package interp

import (
	"testing"
	"time"

	"merlin/internal/packet"
	"merlin/internal/pred"
)

func webPkt(payload int) *packet.Packet {
	return packet.TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 555, 80, make([]byte, payload))
}

func sshPkt() *packet.Packet {
	return packet.TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 555, 22, nil)
}

func TestFilterAllowDeny(t *testing.T) {
	prog := &Program{
		Name: "fw",
		Clauses: []Clause{
			{Pred: pred.Test{Field: "tcp.dst", Value: "22"}, Op: OpDeny},
			{Pred: pred.Test{Field: "tcp.dst", Value: "80"}, Op: OpAllow},
		},
		Default: Drop,
	}
	in, err := New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := in.Process(sshPkt(), 0); v != Drop {
		t.Errorf("ssh verdict = %v, want drop", v)
	}
	if v := in.Process(webPkt(10), 0); v != Accept {
		t.Errorf("web verdict = %v, want accept", v)
	}
	// Default drop for unmatched traffic.
	other := packet.UDPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 1, 53, nil)
	if v := in.Process(other, 0); v != Drop {
		t.Errorf("udp verdict = %v, want default drop", v)
	}
	acc, drop := in.Stats()
	if acc != 1 || drop != 2 {
		t.Errorf("stats = %d/%d", acc, drop)
	}
}

func TestPayloadPredicate(t *testing.T) {
	// Deep-packet-inspection-style match on payload contents is beyond
	// iptables but natural here (the "richer set of predicates" of §3.4).
	p := webPkt(0)
	p.Payload = []byte("attack")
	prog := &Program{
		Clauses: []Clause{{Pred: pred.Test{Field: "payload", Value: "attack"}, Op: OpDeny}},
	}
	in, _ := New(prog, nil)
	if v := in.Process(p, 0); v != Drop {
		t.Error("payload match failed")
	}
	p2 := webPkt(0)
	p2.Payload = []byte("benign")
	if v := in.Process(p2, 0); v != Accept {
		t.Error("benign payload dropped")
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	clock := &ManualClock{}
	prog := &Program{
		Clauses: []Clause{{
			Pred:       pred.Test{Field: "tcp.dst", Value: "80"},
			Op:         OpRateLimit,
			RateBps:    8000, // 1000 bytes/s
			BurstBytes: 1000,
		}},
	}
	in, err := New(prog, clock)
	if err != nil {
		t.Fatal(err)
	}
	// Burst allows the first 1000 bytes.
	if v := in.Process(webPkt(0), 500); v != Accept {
		t.Fatal("first packet should pass on burst")
	}
	if v := in.Process(webPkt(0), 500); v != Accept {
		t.Fatal("second packet should drain the burst")
	}
	if v := in.Process(webPkt(0), 500); v != Drop {
		t.Fatal("third packet should exceed the bucket")
	}
	// After 0.5 s, 500 bytes of tokens accrue.
	clock.Advance(500 * time.Millisecond)
	if v := in.Process(webPkt(0), 500); v != Accept {
		t.Fatal("packet after refill should pass")
	}
	if v := in.Process(webPkt(0), 500); v != Drop {
		t.Fatal("bucket should be empty again")
	}
}

func TestRateLimitLongRunThroughput(t *testing.T) {
	clock := &ManualClock{}
	prog := &Program{
		Clauses: []Clause{{
			Pred:       pred.True,
			Op:         OpRateLimit,
			RateBps:    80000, // 10 KB/s
			BurstBytes: 1000,
		}},
	}
	in, _ := New(prog, clock)
	accepted := 0
	for i := 0; i < 1000; i++ {
		clock.Advance(10 * time.Millisecond) // 10 s total
		if in.Process(webPkt(0), 1000) == Accept {
			accepted++
		}
	}
	// 10 s × 10 KB/s = 100 KB = ~100 packets of 1000 B (+1 burst).
	if accepted < 95 || accepted > 110 {
		t.Fatalf("accepted = %d packets, want ~100", accepted)
	}
}

func TestValidate(t *testing.T) {
	if _, err := New(&Program{Clauses: []Clause{{Op: OpAllow}}}, nil); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := New(&Program{Clauses: []Clause{{Pred: pred.True, Op: OpRateLimit}}}, nil); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestFallThroughOrder(t *testing.T) {
	// First matching clause wins.
	prog := &Program{
		Clauses: []Clause{
			{Pred: pred.Test{Field: "tcp.dst", Value: "80"}, Op: OpAllow},
			{Pred: pred.True, Op: OpDeny},
		},
	}
	in, _ := New(prog, nil)
	if in.Process(webPkt(0), 0) != Accept {
		t.Error("web should match first clause")
	}
	if in.Process(sshPkt(), 0) != Drop {
		t.Error("ssh should fall through to deny")
	}
}

func BenchmarkProcess(b *testing.B) {
	prog := &Program{
		Clauses: []Clause{
			{Pred: pred.Test{Field: "tcp.dst", Value: "22"}, Op: OpDeny},
			{Pred: pred.True, Op: OpRateLimit, RateBps: 1e9},
		},
	}
	in, _ := New(prog, nil)
	p := webPkt(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Process(p, 100)
	}
}
