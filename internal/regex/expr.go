// Package regex implements Merlin path expressions: regular expressions
// whose alphabet is the finite set of network locations (Figure 1 of the
// paper). It provides parsing, Thompson NFA construction, subset-construction
// DFAs, complementation, intersection, Hopcroft minimization, and language
// inclusion — the latter standing in for the Dprle decision-procedure
// library the original implementation uses for negotiator verification (§5).
//
// Unlike POSIX regexes, symbols are whole location names ("h1", "s12",
// "dpi"), "." matches any single location, and "!" is language complement.
package regex

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a parsed path expression.
type Expr interface {
	// String renders the expression in Merlin concrete syntax.
	String() string
	isExpr()
}

// Empty denotes the empty language (no paths).
type Empty struct{}

// Epsilon denotes the language containing only the empty path.
type Epsilon struct{}

// Sym matches a single named location or packet-processing function.
type Sym struct{ Name string }

// Any matches any single location (the "." wildcard).
type Any struct{}

// Group matches any one location from Members. It is produced when the
// compiler substitutes a packet-processing function with the set of
// locations that can host it (§3.2); Tag records the function name so the
// chosen location can be configured later.
type Group struct {
	Tag     string
	Members []string
}

// Concat matches L followed by R.
type Concat struct{ L, R Expr }

// Alt matches either L or R.
type Alt struct{ L, R Expr }

// Star matches zero or more repetitions of X.
type Star struct{ X Expr }

// Not matches the complement of X's language.
type Not struct{ X Expr }

func (Empty) isExpr()   {}
func (Epsilon) isExpr() {}
func (Sym) isExpr()     {}
func (Any) isExpr()     {}
func (Group) isExpr()   {}
func (Concat) isExpr()  {}
func (Alt) isExpr()     {}
func (Star) isExpr()    {}
func (Not) isExpr()     {}

func (Empty) String() string   { return "∅" }
func (Epsilon) String() string { return "ε" }
func (s Sym) String() string   { return s.Name }
func (Any) String() string     { return "." }

func (g Group) String() string {
	return "(" + strings.Join(g.Members, "|") + ")"
}

func (c Concat) String() string { return c.L.String() + " " + c.R.String() }

// Key renders e as a memoization key. Unlike String it distinguishes a
// tagged Group from a plain alternation over the same members, so caches
// keyed on it never share a graph built from a tag-free expression with a
// statement whose expression places functions (or vice versa).
func Key(e Expr) string {
	var sb strings.Builder
	writeKey(&sb, e)
	return sb.String()
}

func writeKey(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case Group:
		sb.WriteByte('(')
		sb.WriteString(x.Tag)
		sb.WriteByte(':')
		for i, m := range x.Members {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(m)
		}
		sb.WriteByte(')')
	case Concat:
		writeKey(sb, x.L)
		sb.WriteByte(' ')
		writeKey(sb, x.R)
	case Alt:
		sb.WriteByte('(')
		writeKey(sb, x.L)
		sb.WriteByte('|')
		writeKey(sb, x.R)
		sb.WriteByte(')')
	case Star:
		sb.WriteByte('(')
		writeKey(sb, x.X)
		sb.WriteString(")*")
	case Not:
		sb.WriteString("!(")
		writeKey(sb, x.X)
		sb.WriteByte(')')
	default:
		sb.WriteString(e.String())
	}
}

func (a Alt) String() string {
	return "(" + a.L.String() + "|" + a.R.String() + ")"
}

func (s Star) String() string {
	switch s.X.(type) {
	case Sym, Any, Group, Alt: // Alt and Group self-parenthesize
		return s.X.String() + "*"
	default:
		return "(" + s.X.String() + ")*"
	}
}

func (n Not) String() string { return "!(" + n.X.String() + ")" }

// Nodes counts AST nodes; the paper uses this as the regex complexity
// measure in Fig. 9 (middle).
func Nodes(e Expr) int {
	switch x := e.(type) {
	case Concat:
		return 1 + Nodes(x.L) + Nodes(x.R)
	case Alt:
		return 1 + Nodes(x.L) + Nodes(x.R)
	case Star:
		return 1 + Nodes(x.X)
	case Not:
		return 1 + Nodes(x.X)
	default:
		return 1
	}
}

// Symbols returns the sorted set of location/function names mentioned in e.
func Symbols(e Expr) []string {
	set := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Sym:
			set[x.Name] = true
		case Group:
			for _, m := range x.Members {
				set[m] = true
			}
		case Concat:
			walk(x.L)
			walk(x.R)
		case Alt:
			walk(x.L)
			walk(x.R)
		case Star:
			walk(x.X)
		case Not:
			walk(x.X)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Substitute rewrites every Sym whose name appears in subst into a tagged
// Group over the substituted members, implementing the function-to-location
// expansion of §3.2 (".* nat .*" becomes ".* (h1|h2|m1) .*").
func Substitute(e Expr, subst map[string][]string) Expr {
	switch x := e.(type) {
	case Sym:
		if members, ok := subst[x.Name]; ok {
			ms := append([]string(nil), members...)
			sort.Strings(ms)
			return Group{Tag: x.Name, Members: ms}
		}
		return x
	case Concat:
		return Concat{Substitute(x.L, subst), Substitute(x.R, subst)}
	case Alt:
		return Alt{Substitute(x.L, subst), Substitute(x.R, subst)}
	case Star:
		return Star{Substitute(x.X, subst)}
	case Not:
		return Not{Substitute(x.X, subst)}
	default:
		return e
	}
}

// ConcatAll folds a sequence into nested Concat nodes; empty input yields
// Epsilon.
func ConcatAll(es ...Expr) Expr {
	if len(es) == 0 {
		return Epsilon{}
	}
	out := es[0]
	for _, e := range es[1:] {
		out = Concat{out, e}
	}
	return out
}

// AltAll folds alternatives; empty input yields Empty.
func AltAll(es ...Expr) Expr {
	if len(es) == 0 {
		return Empty{}
	}
	out := es[0]
	for _, e := range es[1:] {
		out = Alt{out, e}
	}
	return out
}

// lexer

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokDot
	tokStar
	tokPlus
	tokQuest
	tokBang
	tokPipe
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func isIdentByte(b byte) bool {
	return b == '_' || b == ':' || b == '-' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		b := src[i]
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			i++
		case b == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case b == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case b == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i++
		case b == '?':
			toks = append(toks, token{tokQuest, "?", i})
			i++
		case b == '!':
			toks = append(toks, token{tokBang, "!", i})
			i++
		case b == '|':
			toks = append(toks, token{tokPipe, "|", i})
			i++
		case b == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case b == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case isIdentByte(b):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("regex: unexpected character %q at offset %d", b, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// Parse parses a Merlin path expression.
//
// Grammar (standard precedence — alternation lowest, then concatenation by
// juxtaposition, then prefix !, then postfix * + ?):
//
//	alt    := cat ('|' cat)*
//	cat    := unary unary*
//	unary  := '!' unary | postfix
//	postfix:= primary ('*' | '+' | '?')*
//	primary:= ident | '.' | '(' alt ')'
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", t.text, t.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) alt() (Expr, error) {
	l, err := p.cat()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokPipe {
		p.next()
		r, err := p.cat()
		if err != nil {
			return nil, err
		}
		l = Alt{l, r}
	}
	return l, nil
}

func startsUnary(k tokKind) bool {
	switch k {
	case tokIdent, tokDot, tokBang, tokLParen:
		return true
	default:
		return false
	}
}

func (p *parser) cat() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for startsUnary(p.peek().kind) {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Concat{l, r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.peek().kind == tokBang {
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{e}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokStar:
			p.next()
			e = Star{e}
		case tokPlus:
			p.next()
			e = Concat{e, Star{e}}
		case tokQuest:
			p.next()
			e = Alt{e, Epsilon{}}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		return Sym{Name: t.text}, nil
	case tokDot:
		return Any{}, nil
	case tokLParen:
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		if c := p.next(); c.kind != tokRParen {
			return nil, fmt.Errorf("regex: expected ')' at offset %d, found %q", c.pos, c.text)
		}
		return e, nil
	case tokEOF:
		return nil, fmt.Errorf("regex: unexpected end of expression")
	default:
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", t.text, t.pos)
	}
}
