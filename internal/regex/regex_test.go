package regex

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string
	}{
		{"h1", "h1"},
		{".", "."},
		{".*", ".*"},
		{"h1 s1 h2", "h1 s1 h2"},
		{".* dpi .*", ".* dpi .*"},
		{"a|b", "(a|b)"},
		{"a b|c", "(a b|c)"},
		{"(a|b)*", "(a|b)*"},
		{"!a", "!(a)"},
		{"!(a b)", "!(a b)"},
		{"a+", "a a*"},
		{"a?", "(a|ε)"},
	} {
		e, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(", "(a", "a)", "|a", "*", "a @ b", "!"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("(((")
}

func TestNodesAndSymbols(t *testing.T) {
	// .* dpi .* nat .* parses to 3 Any + 3 Star + 2 Sym + 4 Concat = 12.
	e := MustParse(".* dpi .* nat .*")
	if n := Nodes(e); n != 12 {
		t.Errorf("Nodes = %d, want 12", n)
	}
	syms := Symbols(e)
	if len(syms) != 2 || syms[0] != "dpi" || syms[1] != "nat" {
		t.Errorf("Symbols = %v", syms)
	}
}

func TestSubstitute(t *testing.T) {
	e := MustParse(".* nat .*")
	s := Substitute(e, map[string][]string{"nat": {"m1", "h2", "h1"}})
	want := ".* (h1|h2|m1) .*"
	if got := s.String(); got != want {
		t.Errorf("Substitute = %q, want %q", got, want)
	}
	// The group keeps the function tag.
	var foundTag bool
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Group:
			if x.Tag == "nat" {
				foundTag = true
			}
		case Concat:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(s)
	if !foundTag {
		t.Error("substituted group lost its function tag")
	}
}

// alphaFor builds an alphabet covering the expression plus extra names.
func alphaFor(e Expr, extra ...string) *Alphabet {
	a := NewAlphabet(Symbols(e))
	for _, x := range extra {
		a.Intern(x)
	}
	return a
}

func match(t *testing.T, src string, alphaExtra []string, path ...string) bool {
	t.Helper()
	e := MustParse(src)
	n, err := Compile(e, alphaFor(e, alphaExtra...))
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return n.Matches(path)
}

func TestNFAMatching(t *testing.T) {
	extra := []string{"h1", "h2", "s1", "s2", "m1"}
	for _, tc := range []struct {
		src  string
		path []string
		want bool
	}{
		{"h1 s1 h2", []string{"h1", "s1", "h2"}, true},
		{"h1 s1 h2", []string{"h1", "s2", "h2"}, false},
		{"h1 s1 h2", []string{"h1", "s1"}, false},
		{".*", nil, true},
		{".*", []string{"h1", "s1", "s2", "h2"}, true},
		{".* m1 .*", []string{"h1", "s1", "h2"}, false},
		{".* m1 .*", []string{"h1", "m1", "h2"}, true},
		{".* m1 .*", []string{"m1"}, true},
		{"(a|b)*", []string{"a", "b", "a"}, true},
		{"(a|b)*", []string{"a", "c"}, false},
		{"a+", nil, false},
		{"a+", []string{"a", "a"}, true},
		{"a?", nil, true},
		{"a?", []string{"a"}, true},
		{"a?", []string{"a", "a"}, false},
	} {
		if got := match(t, tc.src, extra, tc.path...); got != tc.want {
			t.Errorf("match(%q, %v) = %v, want %v", tc.src, tc.path, got, tc.want)
		}
	}
}

func TestNegationMatching(t *testing.T) {
	extra := []string{"h1", "s1", "s2", "h2"}
	// !(.* s1 .*): any path avoiding s1.
	if match(t, "!(.* s1 .*)", extra, "h1", "s1", "h2") {
		t.Error("path through s1 should not match complement")
	}
	if !match(t, "!(.* s1 .*)", extra, "h1", "s2", "h2") {
		t.Error("path avoiding s1 should match complement")
	}
	// Double negation cancels.
	if !match(t, "!(!(h1 h2))", extra, "h1", "h2") {
		t.Error("double negation broken")
	}
}

func TestFig2Example(t *testing.T) {
	// Figure 2: h1 .* dpi .* nat .* h2, with dpi ∈ {h1,h2,m1}, nat ∈ {m1}.
	e := MustParse("h1 .* dpi .* nat .* h2")
	e = Substitute(e, map[string][]string{
		"dpi": {"h1", "h2", "m1"},
		"nat": {"m1"},
	})
	alpha := NewAlphabet([]string{"h1", "h2", "s1", "s2", "m1"})
	n, err := Compile(e, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// The red path from the figure: h1 s1 m1 (dpi+nat at m1) ... the path
	// visits m1 once for dpi and must visit a nat location after; m1 twice.
	if !n.Matches([]string{"h1", "s1", "m1", "m1", "s1", "s2", "h2"}) {
		t.Error("the figure's solution path should match")
	}
	// Any path avoiding m1 entirely cannot match (nat only at m1).
	if n.Matches([]string{"h1", "s1", "s2", "h2"}) {
		t.Error("path avoiding m1 should not match")
	}
}

func TestDeterminizeAgreesWithNFA(t *testing.T) {
	exprs := []string{".*", "h1 .* h2", ".* (m1|m2) .*", "!(.* m1 .*)", "(a|b)* c"}
	vocab := []string{"h1", "h2", "m1", "m2", "a", "b", "c"}
	r := rand.New(rand.NewSource(3))
	for _, src := range exprs {
		e := MustParse(src)
		alpha := alphaFor(e, vocab...)
		n, err := Compile(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		d := n.Determinize()
		for trial := 0; trial < 200; trial++ {
			ln := r.Intn(6)
			path := make([]string, ln)
			for i := range path {
				path[i] = vocab[r.Intn(len(vocab))]
			}
			if n.Matches(path) != d.Matches(path) {
				t.Fatalf("%q: NFA and DFA disagree on %v", src, path)
			}
		}
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	exprs := []string{".*", "h1 .* h2", ".* m1 .* m2 .*", "!(a b)", "(a|b)*(c|d)"}
	vocab := []string{"h1", "h2", "m1", "m2", "a", "b", "c", "d"}
	r := rand.New(rand.NewSource(11))
	for _, src := range exprs {
		e := MustParse(src)
		alpha := alphaFor(e, vocab...)
		n, err := Compile(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		d := n.Determinize()
		m := d.Minimize()
		if m.States > d.States {
			t.Errorf("%q: minimized has more states (%d > %d)", src, m.States, d.States)
		}
		for trial := 0; trial < 200; trial++ {
			ln := r.Intn(6)
			path := make([]string, ln)
			for i := range path {
				path[i] = vocab[r.Intn(len(vocab))]
			}
			if d.Matches(path) != m.Matches(path) {
				t.Fatalf("%q: minimization changed language on %v", src, path)
			}
		}
	}
}

func TestMinimizeReachesCanonicalSize(t *testing.T) {
	// (a|b)* over {a,b} is the universal language: 1 state.
	e := MustParse("(a|b)*")
	alpha := NewAlphabet([]string{"a", "b"})
	n, _ := Compile(e, alpha)
	m := n.Determinize().Minimize()
	if m.States != 1 {
		t.Errorf("universal language minimized to %d states, want 1", m.States)
	}
}

func TestIncludes(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want bool
	}{
		{".* log .* dpi .*", ".* log .*", true}, // §4.1 path refinement
		{".* log .*", ".* log .* dpi .*", false},
		{"h1 s1 h2", ".*", true},
		{".*", "h1 s1 h2", false},
		{"a b c", "a . c", true},
		{"a . c", "a b c", false},
		{"(a|b)", "(a|b|c)", true},
		{"(a|b|c)", "(a|b)", false},
		{"a*", "a* b?", true},
		{"!(.* x .*)", ".*", true},
	} {
		got, witness, err := Includes(MustParse(tc.a), MustParse(tc.b), Options{})
		if err != nil {
			t.Fatalf("Includes(%q,%q): %v", tc.a, tc.b, err)
		}
		if got != tc.want {
			t.Errorf("Includes(%q,%q) = %v, want %v (witness %v)", tc.a, tc.b, got, tc.want, witness)
		}
		if !got && witness == nil {
			t.Errorf("Includes(%q,%q) failed without witness", tc.a, tc.b)
		}
		if !got {
			// The witness must be accepted by a and rejected by b.
			ea, eb := MustParse(tc.a), MustParse(tc.b)
			alpha := NewAlphabet(append(Symbols(ea), Symbols(eb)...))
			alpha.Intern("\x00other")
			na, _ := Compile(ea, alpha)
			nb, _ := Compile(eb, alpha)
			if !na.Matches(witness) || nb.Matches(witness) {
				t.Errorf("bad witness %v for Includes(%q,%q)", witness, tc.a, tc.b)
			}
		}
	}
}

func TestIncludesWithMinimization(t *testing.T) {
	a, b := MustParse(".* log .* dpi .*"), MustParse(".* log .*")
	got, _, err := Includes(a, b, Options{Minimize: true})
	if err != nil || !got {
		t.Fatalf("minimized inclusion failed: %v %v", got, err)
	}
}

func TestDotCoversUnmentionedLocations(t *testing.T) {
	// ". ⊆ log" must fail: dot matches locations other than log.
	ok, witness, err := Includes(MustParse("."), MustParse("log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal(". should not be included in log")
	}
	if len(witness) != 1 {
		t.Fatalf("witness = %v, want a single location", witness)
	}
}

func TestEquivalent(t *testing.T) {
	eq, err := Equivalent(MustParse("(a|b)*"), MustParse("(b|a)*"))
	if err != nil || !eq {
		t.Fatalf("(a|b)* ≡ (b|a)* failed: %v %v", eq, err)
	}
	eq, err = Equivalent(MustParse("a*"), MustParse("a+"))
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("a* should differ from a+")
	}
}

func TestEmptyLanguage(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"a", false},
		{".*", false},
		{"!(.*)", true},
		{"a !(b)", false}, // complement of {b} contains ε, so "a" is accepted
		{"a !(.*)", true}, // concatenation with the empty language
	} {
		got, err := EmptyLanguage(MustParse(tc.src))
		if err != nil {
			t.Fatalf("EmptyLanguage(%q): %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("EmptyLanguage(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEpsFree(t *testing.T) {
	e := MustParse("h1 .* h2")
	alpha := alphaFor(e, "s1")
	n, err := Compile(e, alpha)
	if err != nil {
		t.Fatal(err)
	}
	ef := n.EpsFree()
	// Simulate: from start, only h1 moves; after h1 the wildcard loop and
	// h2 are available.
	h1 := alpha.Symbol("h1")
	s1 := alpha.Symbol("s1")
	if len(ef.Move(ef.Start, s1)) != 0 {
		t.Error("start state should not move on s1")
	}
	m := ef.Move(ef.Start, h1)
	if len(m) == 0 {
		t.Fatal("start state should move on h1")
	}
	if ef.Accept[ef.Start] {
		t.Error("start should not accept")
	}
}

func TestSymSet(t *testing.T) {
	s := NewSymSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) || s.Has(128) {
		t.Error("SymSet membership wrong")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	c := s.Clone()
	c.Add(5)
	if s.Has(5) {
		t.Error("Clone aliases storage")
	}
	f := NewSymSet(70)
	f.Fill(70)
	if f.Count() != 70 {
		t.Errorf("Fill count = %d, want 70", f.Count())
	}
}

func TestAlphabet(t *testing.T) {
	a := NewAlphabet([]string{"x", "y", "x"})
	if a.Size() != 2 {
		t.Fatalf("Size = %d, want 2", a.Size())
	}
	if a.Symbol("x") != 0 || a.Symbol("y") != 1 || a.Symbol("z") != -1 {
		t.Error("Symbol lookup wrong")
	}
	if a.Name(1) != "y" {
		t.Error("Name lookup wrong")
	}
	id := a.Intern("z")
	if id != 2 || a.Symbol("z") != 2 {
		t.Error("Intern wrong")
	}
}

// randomExpr generates a random expression over a small vocabulary.
// Negation is excluded (its determinization cost dwarfs the others and is
// covered separately).
func randomExpr(r *rand.Rand, depth int) Expr {
	vocab := []string{"a", "b", "c"}
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return Any{}
		default:
			return Sym{Name: vocab[r.Intn(len(vocab))]}
		}
	}
	switch r.Intn(4) {
	case 0:
		return Concat{randomExpr(r, depth-1), randomExpr(r, depth-1)}
	case 1:
		return Alt{randomExpr(r, depth-1), randomExpr(r, depth-1)}
	case 2:
		return Star{randomExpr(r, depth-1)}
	default:
		return Sym{Name: vocab[r.Intn(len(vocab))]}
	}
}

// Property: inclusion is reflexive, and L(a) ⊆ L(a|b).
func TestIncludesProperties(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 3)
		b := randomExpr(r, 3)
		refl, _, err := Includes(a, a, Options{})
		if err != nil || !refl {
			return false
		}
		sub, _, err := Includes(a, Alt{a, b}, Options{})
		return err == nil && sub
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: round-tripping an expression through String/Parse preserves the
// language.
func TestParseStringRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		// ε and ∅ don't have concrete syntax; skip expressions containing
		// them (randomExpr never emits them anyway).
		s := e.String()
		parsed, err := Parse(s)
		if err != nil {
			return false
		}
		eq, err := Equivalent(e, parsed)
		return err == nil && eq
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func buildChainExpr(n int) Expr {
	parts := make([]string, 0, 2*n+1)
	parts = append(parts, ".*")
	for i := 0; i < n; i++ {
		parts = append(parts, fmt.Sprintf("w%d", i), ".*")
	}
	return MustParse(strings.Join(parts, " "))
}

func BenchmarkInclusion(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		a := buildChainExpr(n)
		sup := buildChainExpr(n / 2)
		b.Run(fmt.Sprintf("waypoints=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Includes(a, sup, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
