package regex

import (
	"fmt"
	"math/bits"
	"sort"
)

// Alphabet interns location names as dense integer symbols so that automata
// can use bitsets for edge labels.
type Alphabet struct {
	names []string
	index map[string]int
}

// NewAlphabet builds an alphabet over the given names. Duplicates are
// collapsed; order of first occurrence is preserved.
func NewAlphabet(names []string) *Alphabet {
	a := &Alphabet{index: make(map[string]int, len(names))}
	for _, n := range names {
		a.Intern(n)
	}
	return a
}

// Intern returns the symbol for name, adding it if new.
func (a *Alphabet) Intern(name string) int {
	if id, ok := a.index[name]; ok {
		return id
	}
	id := len(a.names)
	a.names = append(a.names, name)
	a.index[name] = id
	return id
}

// Symbol returns the symbol for name, or -1 if unknown.
func (a *Alphabet) Symbol(name string) int {
	if id, ok := a.index[name]; ok {
		return id
	}
	return -1
}

// Name returns the name of symbol id.
func (a *Alphabet) Name(id int) string { return a.names[id] }

// Size returns the number of symbols.
func (a *Alphabet) Size() int { return len(a.names) }

// Names returns the interned names in symbol order. Do not modify.
func (a *Alphabet) Names() []string { return a.names }

// SymSet is a bitset over an alphabet's symbols.
type SymSet []uint64

// NewSymSet returns an empty set sized for n symbols.
func NewSymSet(n int) SymSet { return make(SymSet, (n+63)/64) }

// Add inserts symbol s.
func (ss SymSet) Add(s int) { ss[s/64] |= 1 << (uint(s) % 64) }

// Has reports whether symbol s is in the set.
func (ss SymSet) Has(s int) bool {
	w := s / 64
	return w < len(ss) && ss[w]&(1<<(uint(s)%64)) != 0
}

// Fill adds all of the first n symbols.
func (ss SymSet) Fill(n int) {
	for s := 0; s < n; s++ {
		ss.Add(s)
	}
}

// Count returns the number of symbols in the set.
func (ss SymSet) Count() int {
	n := 0
	for _, w := range ss {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy of the set.
func (ss SymSet) Clone() SymSet {
	out := make(SymSet, len(ss))
	copy(out, ss)
	return out
}

// Edge is an NFA transition labeled with a symbol set. Tag carries the name
// of the packet-processing function the transition implements, or "" for
// plain forwarding steps; the logical-topology construction uses it to
// recover function placements from chosen paths (§3.2).
type Edge struct {
	From int
	Set  SymSet
	Tag  string
	To   int
}

// NFA is a nondeterministic finite automaton over an interned alphabet,
// with epsilon transitions. State 0..States-1; Start is the start state.
type NFA struct {
	Alphabet *Alphabet
	States   int
	Start    int
	Accept   []bool
	Edges    []Edge
	Eps      [][]int // eps[q] = states reachable by one epsilon move
}

func (n *NFA) newState() int {
	n.States++
	n.Accept = append(n.Accept, false)
	n.Eps = append(n.Eps, nil)
	return n.States - 1
}

func (n *NFA) addEps(from, to int) { n.Eps[from] = append(n.Eps[from], to) }

func (n *NFA) addEdge(from int, set SymSet, tag string, to int) {
	n.Edges = append(n.Edges, Edge{From: from, Set: set, Tag: tag, To: to})
}

// Compile builds an NFA for e via Thompson construction. All names in the
// alphabet participate in "." wildcards; names mentioned by e but missing
// from alpha are interned (so "dpi" in a policy over a topology without a
// dpi location simply yields an unmatchable symbol rather than an error —
// the caller detects that later as an unsatisfiable path constraint).
// Complemented subexpressions are compiled by determinization, so their
// function tags are discarded; Merlin rejects function symbols under "!"
// at the policy level.
func Compile(e Expr, alpha *Alphabet) (*NFA, error) {
	for _, s := range Symbols(e) {
		alpha.Intern(s)
	}
	n := &NFA{Alphabet: alpha}
	start, end, err := n.build(e)
	if err != nil {
		return nil, err
	}
	n.Start = start
	n.Accept[end] = true
	return n, nil
}

// build returns (start, end) fragment states for e.
func (n *NFA) build(e Expr) (int, int, error) {
	switch x := e.(type) {
	case Empty:
		s, t := n.newState(), n.newState()
		return s, t, nil // no connection: empty language
	case Epsilon:
		s, t := n.newState(), n.newState()
		n.addEps(s, t)
		return s, t, nil
	case Sym:
		s, t := n.newState(), n.newState()
		set := NewSymSet(n.Alphabet.Size())
		set.Add(n.Alphabet.Intern(x.Name))
		n.addEdge(s, set, "", t)
		return s, t, nil
	case Any:
		s, t := n.newState(), n.newState()
		set := NewSymSet(n.Alphabet.Size())
		set.Fill(n.Alphabet.Size())
		n.addEdge(s, set, "", t)
		return s, t, nil
	case Group:
		s, t := n.newState(), n.newState()
		set := NewSymSet(n.Alphabet.Size())
		for _, m := range x.Members {
			set.Add(n.Alphabet.Intern(m))
		}
		n.addEdge(s, set, x.Tag, t)
		return s, t, nil
	case Concat:
		ls, le, err := n.build(x.L)
		if err != nil {
			return 0, 0, err
		}
		rs, re, err := n.build(x.R)
		if err != nil {
			return 0, 0, err
		}
		n.addEps(le, rs)
		return ls, re, nil
	case Alt:
		ls, le, err := n.build(x.L)
		if err != nil {
			return 0, 0, err
		}
		rs, re, err := n.build(x.R)
		if err != nil {
			return 0, 0, err
		}
		s, t := n.newState(), n.newState()
		n.addEps(s, ls)
		n.addEps(s, rs)
		n.addEps(le, t)
		n.addEps(re, t)
		return s, t, nil
	case Star:
		is, ie, err := n.build(x.X)
		if err != nil {
			return 0, 0, err
		}
		s, t := n.newState(), n.newState()
		n.addEps(s, is)
		n.addEps(s, t)
		n.addEps(ie, is)
		n.addEps(ie, t)
		return s, t, nil
	case Not:
		// Compile the body on the shared alphabet, determinize, complement,
		// then splice the complement DFA in as an NFA fragment.
		inner, err := Compile(x.X, n.Alphabet)
		if err != nil {
			return 0, 0, err
		}
		dfa := inner.Determinize().Complement()
		base := n.States
		for q := 0; q < dfa.States; q++ {
			n.newState()
		}
		t := n.newState()
		for q := 0; q < dfa.States; q++ {
			// Group q's outgoing transitions by target into symbol sets.
			byTarget := make(map[int]SymSet)
			for sym := 0; sym < dfa.Alphabet.Size(); sym++ {
				to := dfa.Trans[q][sym]
				set, ok := byTarget[to]
				if !ok {
					set = NewSymSet(dfa.Alphabet.Size())
					byTarget[to] = set
				}
				set.Add(sym)
			}
			targets := make([]int, 0, len(byTarget))
			for to := range byTarget {
				targets = append(targets, to)
			}
			sort.Ints(targets)
			for _, to := range targets {
				n.addEdge(base+q, byTarget[to], "", base+to)
			}
			if dfa.Accept[q] {
				n.addEps(base+q, t)
			}
		}
		return base + dfa.Start, t, nil
	default:
		return 0, 0, fmt.Errorf("regex: cannot compile %T", e)
	}
}

// closure expands set (a bitset of states) to its epsilon closure in place.
func (n *NFA) closure(set []bool) {
	stack := make([]int, 0, n.States)
	for q, in := range set {
		if in {
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range n.Eps[q] {
			if !set[r] {
				set[r] = true
				stack = append(stack, r)
			}
		}
	}
}

// Matches reports whether the sequence of location names is in the NFA's
// language. Unknown names never match.
func (n *NFA) Matches(path []string) bool {
	cur := make([]bool, n.States)
	cur[n.Start] = true
	n.closure(cur)
	for _, name := range path {
		sym := n.Alphabet.Symbol(name)
		next := make([]bool, n.States)
		if sym >= 0 {
			for _, e := range n.Edges {
				if cur[e.From] && e.Set.Has(sym) {
					next[e.To] = true
				}
			}
		}
		n.closure(next)
		cur = next
	}
	for q, in := range cur {
		if in && n.Accept[q] {
			return true
		}
	}
	return false
}

// EpsFree is an epsilon-free view of an NFA: per-state outgoing transitions
// with accepting status folded through epsilon closures. It is the form the
// logical-topology product construction consumes.
type EpsFree struct {
	Alphabet *Alphabet
	States   int
	Start    int
	Accept   []bool
	Out      [][]Edge // Out[q] lists transitions from q
}

// EpsFree converts the NFA by the standard closure construction: state q
// inherits every transition leaving its epsilon closure, and is accepting
// if the closure contains an accepting state.
func (n *NFA) EpsFree() *EpsFree {
	ef := &EpsFree{
		Alphabet: n.Alphabet,
		States:   n.States,
		Start:    n.Start,
		Accept:   make([]bool, n.States),
		Out:      make([][]Edge, n.States),
	}
	outByState := make([][]Edge, n.States)
	for _, e := range n.Edges {
		outByState[e.From] = append(outByState[e.From], e)
	}
	for q := 0; q < n.States; q++ {
		set := make([]bool, n.States)
		set[q] = true
		n.closure(set)
		for r, in := range set {
			if !in {
				continue
			}
			if n.Accept[r] {
				ef.Accept[q] = true
			}
			for _, e := range outByState[r] {
				ef.Out[q] = append(ef.Out[q], Edge{From: q, Set: e.Set, Tag: e.Tag, To: e.To})
			}
		}
	}
	return ef
}

// Move returns the set of (state, tag) pairs reachable from q on symbol sym.
func (ef *EpsFree) Move(q, sym int) []Edge {
	var out []Edge
	for _, e := range ef.Out[q] {
		if e.Set.Has(sym) {
			out = append(out, e)
		}
	}
	return out
}
