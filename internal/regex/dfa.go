package regex

import (
	"fmt"
	"sort"
	"strings"
)

// DFA is a complete deterministic automaton: every state has exactly one
// successor per alphabet symbol (a dead state absorbs non-matches).
type DFA struct {
	Alphabet *Alphabet
	States   int
	Start    int
	Accept   []bool
	Trans    [][]int // Trans[state][symbol]
}

// Determinize performs the subset construction, producing a complete DFA.
func (n *NFA) Determinize() *DFA {
	size := n.Alphabet.Size()
	// Index NFA edges by source for the move computation.
	outByState := make([][]Edge, n.States)
	for _, e := range n.Edges {
		outByState[e.From] = append(outByState[e.From], e)
	}
	key := func(set []bool) string {
		var sb strings.Builder
		for q, in := range set {
			if in {
				fmt.Fprintf(&sb, "%d,", q)
			}
		}
		return sb.String()
	}
	start := make([]bool, n.States)
	start[n.Start] = true
	n.closure(start)

	d := &DFA{Alphabet: n.Alphabet}
	ids := map[string]int{}
	var sets [][]bool
	newState := func(set []bool) int {
		k := key(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := d.States
		d.States++
		ids[k] = id
		sets = append(sets, set)
		acc := false
		for q, in := range set {
			if in && n.Accept[q] {
				acc = true
				break
			}
		}
		d.Accept = append(d.Accept, acc)
		d.Trans = append(d.Trans, make([]int, size))
		return id
	}
	d.Start = newState(start)
	for work := 0; work < d.States; work++ {
		set := sets[work]
		for sym := 0; sym < size; sym++ {
			next := make([]bool, n.States)
			any := false
			for q, in := range set {
				if !in {
					continue
				}
				for _, e := range outByState[q] {
					if e.Set.Has(sym) {
						next[e.To] = true
						any = true
					}
				}
			}
			if any {
				n.closure(next)
			}
			d.Trans[work][sym] = newState(next)
		}
	}
	return d
}

// Complement returns a DFA accepting exactly the strings d rejects.
func (d *DFA) Complement() *DFA {
	out := &DFA{
		Alphabet: d.Alphabet,
		States:   d.States,
		Start:    d.Start,
		Accept:   make([]bool, d.States),
		Trans:    d.Trans,
	}
	for q, a := range d.Accept {
		out.Accept[q] = !a
	}
	return out
}

// Intersect returns the product DFA accepting the intersection of the two
// languages. Both automata must share the same alphabet.
func (d *DFA) Intersect(o *DFA) *DFA {
	if d.Alphabet != o.Alphabet {
		panic("regex: intersecting DFAs over different alphabets")
	}
	size := d.Alphabet.Size()
	type pair struct{ a, b int }
	ids := map[pair]int{}
	var pairs []pair
	out := &DFA{Alphabet: d.Alphabet}
	newState := func(p pair) int {
		if id, ok := ids[p]; ok {
			return id
		}
		id := out.States
		out.States++
		ids[p] = id
		pairs = append(pairs, p)
		out.Accept = append(out.Accept, d.Accept[p.a] && o.Accept[p.b])
		out.Trans = append(out.Trans, make([]int, size))
		return id
	}
	out.Start = newState(pair{d.Start, o.Start})
	for work := 0; work < out.States; work++ {
		p := pairs[work]
		for sym := 0; sym < size; sym++ {
			out.Trans[work][sym] = newState(pair{d.Trans[p.a][sym], o.Trans[p.b][sym]})
		}
	}
	return out
}

// Empty reports whether the DFA accepts no string.
func (d *DFA) Empty() bool {
	seen := make([]bool, d.States)
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[q] {
			return false
		}
		for _, to := range d.Trans[q] {
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return true
}

// Witness returns a shortest accepted string, or nil if the language is
// empty. Useful in error messages ("this refinement admits path X the
// original forbids").
func (d *DFA) Witness() []string {
	type entry struct {
		state  int
		parent int // index into trail, -1 for start
		sym    int
	}
	trail := []entry{{state: d.Start, parent: -1, sym: -1}}
	seen := make([]bool, d.States)
	seen[d.Start] = true
	for i := 0; i < len(trail); i++ {
		e := trail[i]
		if d.Accept[e.state] {
			var rev []int
			for j := i; trail[j].parent != -1; j = trail[j].parent {
				rev = append(rev, trail[j].sym)
			}
			out := make([]string, len(rev))
			for k := range rev {
				out[k] = d.Alphabet.Name(rev[len(rev)-1-k])
			}
			return out
		}
		for sym := 0; sym < d.Alphabet.Size(); sym++ {
			to := d.Trans[e.state][sym]
			if !seen[to] {
				seen[to] = true
				trail = append(trail, entry{state: to, parent: i, sym: sym})
			}
		}
	}
	return nil
}

// Minimize returns an equivalent DFA with the minimum number of states,
// using Hopcroft's partition-refinement algorithm.
func (d *DFA) Minimize() *DFA {
	size := d.Alphabet.Size()
	// Restrict to reachable states first.
	reach := make([]int, d.States)
	for i := range reach {
		reach[i] = -1
	}
	order := []int{d.Start}
	reach[d.Start] = 0
	for i := 0; i < len(order); i++ {
		for _, to := range d.Trans[order[i]] {
			if reach[to] < 0 {
				reach[to] = len(order)
				order = append(order, to)
			}
		}
	}
	n := len(order)
	accept := make([]bool, n)
	trans := make([][]int, n)
	for newID, oldID := range order {
		accept[newID] = d.Accept[oldID]
		row := make([]int, size)
		for sym, to := range d.Trans[oldID] {
			row[sym] = reach[to]
		}
		trans[newID] = row
	}
	// Reverse transition lists for the refinement step.
	rev := make([][][]int, size)
	for sym := 0; sym < size; sym++ {
		rev[sym] = make([][]int, n)
	}
	for q := 0; q < n; q++ {
		for sym := 0; sym < size; sym++ {
			to := trans[q][sym]
			rev[sym][to] = append(rev[sym][to], q)
		}
	}
	// Initial partition: accepting vs non-accepting.
	part := make([]int, n) // state -> block id
	var blocks [][]int
	var accBlock, rejBlock []int
	for q := 0; q < n; q++ {
		if accept[q] {
			accBlock = append(accBlock, q)
		} else {
			rejBlock = append(rejBlock, q)
		}
	}
	addBlock := func(states []int) int {
		id := len(blocks)
		blocks = append(blocks, states)
		for _, q := range states {
			part[q] = id
		}
		return id
	}
	var worklist []int
	if len(accBlock) > 0 {
		worklist = append(worklist, addBlock(accBlock))
	}
	if len(rejBlock) > 0 {
		worklist = append(worklist, addBlock(rejBlock))
	}
	inWork := make(map[int]bool)
	for _, b := range worklist {
		inWork[b] = true
	}
	for len(worklist) > 0 {
		a := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		inWork[a] = false
		splitter := append([]int(nil), blocks[a]...)
		for sym := 0; sym < size; sym++ {
			// X = states with a sym-transition into block a.
			inX := make(map[int]bool)
			for _, q := range splitter {
				for _, p := range rev[sym][q] {
					inX[p] = true
				}
			}
			if len(inX) == 0 {
				continue
			}
			// Split every block crossed by X.
			affected := make(map[int]bool)
			for p := range inX {
				affected[part[p]] = true
			}
			for b := range affected {
				var yes, no []int
				for _, q := range blocks[b] {
					if inX[q] {
						yes = append(yes, q)
					} else {
						no = append(no, q)
					}
				}
				if len(yes) == 0 || len(no) == 0 {
					continue
				}
				blocks[b] = yes
				newID := addBlock(no)
				if inWork[b] {
					worklist = append(worklist, newID)
					inWork[newID] = true
				} else {
					// add the smaller half
					if len(yes) <= len(no) {
						worklist = append(worklist, b)
						inWork[b] = true
					} else {
						worklist = append(worklist, newID)
						inWork[newID] = true
					}
				}
			}
		}
	}
	// Build the quotient automaton.
	out := &DFA{
		Alphabet: d.Alphabet,
		States:   len(blocks),
		Start:    part[0], // state 0 is the renumbered start
		Accept:   make([]bool, len(blocks)),
		Trans:    make([][]int, len(blocks)),
	}
	for b, states := range blocks {
		q := states[0]
		out.Accept[b] = accept[q]
		row := make([]int, size)
		for sym := 0; sym < size; sym++ {
			row[sym] = part[trans[q][sym]]
		}
		out.Trans[b] = row
	}
	return out
}

// EpsFree converts the DFA into the epsilon-free NFA form the
// logical-topology construction consumes, trimming states that cannot
// reach an accepting state (the dead state of the completion). Function
// tags are absent — determinization discards them; callers recover tags
// against the original NFA with the tag-recovery simulation.
func (d *DFA) EpsFree() *EpsFree {
	// Co-reachability: which states reach an accepting state?
	size := d.Alphabet.Size()
	rev := make([][]int, d.States)
	for q := 0; q < d.States; q++ {
		for sym := 0; sym < size; sym++ {
			to := d.Trans[q][sym]
			rev[to] = append(rev[to], q)
		}
	}
	live := make([]bool, d.States)
	var stack []int
	for q, acc := range d.Accept {
		if acc {
			live[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}
	// Renumber live states (keep the start state even if dead so the
	// automaton stays well-formed for empty languages).
	id := make([]int, d.States)
	for i := range id {
		id[i] = -1
	}
	count := 0
	for q := 0; q < d.States; q++ {
		if live[q] || q == d.Start {
			id[q] = count
			count++
		}
	}
	ef := &EpsFree{
		Alphabet: d.Alphabet,
		States:   count,
		Start:    id[d.Start],
		Accept:   make([]bool, count),
		Out:      make([][]Edge, count),
	}
	for q := 0; q < d.States; q++ {
		if id[q] < 0 {
			continue
		}
		ef.Accept[id[q]] = d.Accept[q]
		// Group transitions by live target into symbol sets.
		byTarget := make(map[int]SymSet)
		for sym := 0; sym < size; sym++ {
			to := d.Trans[q][sym]
			if id[to] < 0 {
				continue
			}
			set, ok := byTarget[to]
			if !ok {
				set = NewSymSet(size)
				byTarget[to] = set
			}
			set.Add(sym)
		}
		targets := make([]int, 0, len(byTarget))
		for to := range byTarget {
			targets = append(targets, to)
		}
		sort.Ints(targets)
		for _, to := range targets {
			ef.Out[id[q]] = append(ef.Out[id[q]], Edge{From: id[q], Set: byTarget[to], To: id[to]})
		}
	}
	return ef
}

// HasTags reports whether the expression contains function groups whose
// placements must be recovered after routing.
func HasTags(e Expr) bool {
	switch x := e.(type) {
	case Group:
		return x.Tag != ""
	case Concat:
		return HasTags(x.L) || HasTags(x.R)
	case Alt:
		return HasTags(x.L) || HasTags(x.R)
	case Star:
		return HasTags(x.X)
	case Not:
		return HasTags(x.X)
	default:
		return false
	}
}

// Matches reports whether the sequence of location names is accepted.
func (d *DFA) Matches(path []string) bool {
	q := d.Start
	for _, name := range path {
		sym := d.Alphabet.Symbol(name)
		if sym < 0 {
			return false
		}
		q = d.Trans[q][sym]
	}
	return d.Accept[q]
}

// Options configure the inclusion decision procedure.
type Options struct {
	// Minimize runs Hopcroft minimization on both operands before the
	// product construction. Smaller products, but extra up-front cost.
	Minimize bool
}

// Includes reports whether L(a) ⊆ L(b), given two expressions over a shared
// location vocabulary. This is the verification primitive negotiators use
// to check that a refined path constraint stays within the original (§4.2).
// The optional witness names a path in L(a)\L(b) when inclusion fails.
func Includes(a, b Expr, opts Options) (bool, []string, error) {
	alpha := NewAlphabet(nil)
	for _, s := range Symbols(a) {
		alpha.Intern(s)
	}
	for _, s := range Symbols(b) {
		alpha.Intern(s)
	}
	// A fresh symbol stands in for "every location neither side mentions":
	// "." must be able to match locations outside both vocabularies, or
	// inclusions like "log ⊆ .*" would hold vacuously for the wrong reason
	// while ". ⊆ log|dpi" would wrongly hold.
	alpha.Intern("\x00other")
	na, err := Compile(a, alpha)
	if err != nil {
		return false, nil, err
	}
	nb, err := Compile(b, alpha)
	if err != nil {
		return false, nil, err
	}
	da, db := na.Determinize(), nb.Determinize()
	if opts.Minimize {
		da, db = da.Minimize(), db.Minimize()
	}
	diff := da.Intersect(db.Complement())
	if diff.Empty() {
		return true, nil, nil
	}
	return false, diff.Witness(), nil
}

// Equivalent reports whether the two expressions denote the same language.
func Equivalent(a, b Expr) (bool, error) {
	ab, _, err := Includes(a, b, Options{})
	if err != nil || !ab {
		return false, err
	}
	ba, _, err := Includes(b, a, Options{})
	return ab && ba, err
}

// EmptyLanguage reports whether e denotes the empty language over the
// vocabulary it mentions (plus the implicit "other" symbol).
func EmptyLanguage(e Expr) (bool, error) {
	alpha := NewAlphabet(Symbols(e))
	alpha.Intern("\x00other")
	n, err := Compile(e, alpha)
	if err != nil {
		return false, err
	}
	return n.Determinize().Empty(), nil
}
