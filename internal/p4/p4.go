// Package p4 is a dataplane backend emitting P4 match-action table
// entries from the compiler's target-neutral IR — the runtime
// configuration (in P4Runtime spirit) a controller would push into a
// fixed merlin.p4 pipeline: an ingress classifier table mapping untagged
// traffic onto path tags, a tag-forwarding table pinning provisioned
// paths, and an egress queue table carrying the bandwidth reservations.
// It exists to prove the backend seam: it consumes exactly the same
// lowered Program as the OpenFlow/Click/tc built-ins and plugs in through
// codegen.Register, so any policy the compiler accepts can target P4
// hardware by adding "p4" to Options.Targets.
//
// Host-side sections of the IR (rate caps, edge filters, end-host
// functions) are deliberately not rendered here: they configure end
// hosts, not P4 switches, and remain the tc/host backends' business. A
// caps-only policy update therefore leaves the P4 artifact untouched.
package p4

import (
	"fmt"
	"strings"

	"merlin/internal/codegen"
	"merlin/internal/pred"
	"merlin/internal/topo"
)

// Name is the backend's registry key.
const Name = "p4"

// Pipeline table names.
const (
	TableClassifier = "MerlinIngress.classifier"
	TableForward    = "MerlinIngress.tag_forward"
	TableQueue      = "MerlinEgress.port_queue"
)

// TableEntry is one match-action entry on one device.
type TableEntry struct {
	Device   topo.NodeID
	Table    string
	Priority int
	// Match holds "field=value" keys; ternary fields absent from the
	// list are don't-care.
	Match []string
	// Action names the pipeline action; Params its "name=value"
	// arguments.
	Action string
	Params []string
	// Stmt is the policy statement the entry was lowered from.
	Stmt string
}

// String renders the entry in a stable, human-auditable form.
func (e TableEntry) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "table=%s prio=%d match={%s} action=%s(%s)",
		e.Table, e.Priority, strings.Join(e.Match, ","), e.Action, strings.Join(e.Params, ","))
	return sb.String()
}

// Artifact is the p4 backend's emitted configuration.
type Artifact struct {
	TableEntries []TableEntry
}

// Backend implements codegen.Artifact.
func (a *Artifact) Backend() string { return Name }

// Entries implements codegen.Artifact.
func (a *Artifact) Entries() []codegen.Entry {
	out := make([]codegen.Entry, len(a.TableEntries))
	for i, e := range a.TableEntries {
		out[i] = codegen.Entry{Device: e.Device, Text: e.String()}
	}
	return out
}

// Count reports the number of emitted table entries.
func (a *Artifact) Count() int { return len(a.TableEntries) }

type backend struct{}

// Name implements codegen.Backend.
func (backend) Name() string { return Name }

// Emit implements codegen.Backend: IR rules become classifier or
// tag-forwarding entries, queue reservations become egress queue entries.
// Emission order follows the Program, so the artifact is deterministic.
func (backend) Emit(t *topo.Topology, prog *codegen.Program) (codegen.Artifact, error) {
	art := &Artifact{TableEntries: make([]TableEntry, 0, len(prog.Rules)+len(prog.Queues))}
	for _, r := range prog.Rules {
		e := TableEntry{
			Device:   r.Device,
			Table:    tableFor(r),
			Priority: r.Priority,
			Match:    matchKeys(r.Match),
			Stmt:     r.Stmt,
		}
		e.Action, e.Params = actionFor(r.Ops)
		art.TableEntries = append(art.TableEntries, e)
	}
	for _, q := range prog.Queues {
		art.TableEntries = append(art.TableEntries, TableEntry{
			Device: q.Switch,
			Table:  TableQueue,
			Match: []string{
				fmt.Sprintf("egress_port=%d", q.Port),
				fmt.Sprintf("queue_id=%d", q.Queue),
			},
			Action: "set_min_rate",
			Params: []string{fmt.Sprintf("bps=%.0f", q.MinBps)},
		})
	}
	return art, nil
}

// Diff implements codegen.Backend.
func (b backend) Diff(old, new codegen.Artifact) codegen.ArtifactDiff {
	return codegen.DiffArtifacts(Name, old, new)
}

// tableFor routes a rule to its pipeline table: untagged traffic is
// classified, tagged traffic forwarded.
func tableFor(r codegen.Rule) string {
	if r.Match.Tag == codegen.TagNone {
		return TableClassifier
	}
	return TableForward
}

// matchKeys renders the IR match as ternary keys in a fixed field order.
// The predicate key carries the compiler's classifier abstraction intact
// (the same treatment OpenFlow gives openflow.Match.Predicate): a real
// pipeline would expand it into header-field ternary entries, and the
// entries here are already single positive cubes for classification
// rules.
func matchKeys(m codegen.Match) []string {
	var keys []string
	if m.InPort != codegen.AnyPort {
		keys = append(keys, fmt.Sprintf("ingress_port=%d", m.InPort))
	}
	switch m.Tag {
	case codegen.TagAny:
		// don't-care
	case codegen.TagNone:
		keys = append(keys, "tag_valid=0")
	default:
		keys = append(keys, "tag_valid=1", fmt.Sprintf("tag=%d", m.Tag))
	}
	if m.SrcMAC != "" {
		keys = append(keys, "eth_src="+m.SrcMAC)
	}
	if m.DstMAC != "" {
		keys = append(keys, "eth_dst="+m.DstMAC)
	}
	if m.Pred != nil {
		keys = append(keys, "cls="+pred.Format(m.Pred))
	}
	return keys
}

// actionFor folds an IR op sequence into one pipeline action name plus
// parameters: [set_tag, forward] becomes push_tag_forward(tag, port), a
// queued forward becomes forward_queue(port, queue), and so on. The fold
// is generic, so any op sequence the lowerer can produce (including
// retag-over-clear chains) maps to a well-formed compound action.
func actionFor(ops []codegen.Op) (string, []string) {
	var names, params []string
	for _, op := range ops {
		switch op.Kind {
		case codegen.OpForward:
			names = append(names, "forward")
			params = append(params, fmt.Sprintf("port=%d", op.Port))
		case codegen.OpForwardQueue:
			names = append(names, "forward_queue")
			params = append(params, fmt.Sprintf("port=%d", op.Port), fmt.Sprintf("queue=%d", op.Queue))
		case codegen.OpSetTag:
			names = append(names, "push_tag")
			params = append(params, fmt.Sprintf("tag=%d", op.Tag))
		case codegen.OpClearTag:
			names = append(names, "pop_tag")
		case codegen.OpDrop:
			names = append(names, "drop")
		}
	}
	if len(names) == 0 {
		return "nop", nil
	}
	return strings.Join(names, "_"), params
}

func init() {
	codegen.Register(backend{})
}
