package p4_test

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	merlin "merlin"
	"merlin/internal/codegen"
	"merlin/internal/p4"
	"merlin/internal/topo"
	"merlin/internal/zoo"
)

// knownTables and the action-name shape define what "valid" means for the
// fixed merlin.p4 pipeline the backend targets.
var knownTables = map[string]bool{
	p4.TableClassifier: true,
	p4.TableForward:    true,
	p4.TableQueue:      true,
}

var (
	actionName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	paramForm  = regexp.MustCompile(`^[a-z_]+=`)
)

// validateArtifact structurally checks every emitted table entry.
func validateArtifact(t *testing.T, tp *topo.Topology, art *p4.Artifact) {
	t.Helper()
	if art.Count() != len(art.TableEntries) {
		t.Fatalf("Count %d != entries %d", art.Count(), len(art.TableEntries))
	}
	for i, e := range art.TableEntries {
		if !knownTables[e.Table] {
			t.Fatalf("entry %d: unknown table %q", i, e.Table)
		}
		if tp.Node(e.Device).Kind != topo.Switch {
			t.Fatalf("entry %d: device %d is not a switch", i, e.Device)
		}
		if !actionName.MatchString(e.Action) {
			t.Fatalf("entry %d: malformed action %q", i, e.Action)
		}
		for _, p := range e.Params {
			if !paramForm.MatchString(p) {
				t.Fatalf("entry %d: malformed param %q", i, p)
			}
		}
		for _, m := range e.Match {
			if !strings.Contains(m, "=") {
				t.Fatalf("entry %d: malformed match key %q", i, m)
			}
		}
		switch e.Table {
		case p4.TableClassifier:
			for _, m := range e.Match {
				if strings.HasPrefix(m, "tag=") {
					t.Fatalf("entry %d: classifier matches a tag: %s", i, e)
				}
			}
		case p4.TableForward:
			if !strings.Contains(strings.Join(e.Match, ","), "tag=") {
				t.Fatalf("entry %d: forward entry without a tag match: %s", i, e)
			}
		case p4.TableQueue:
			if e.Action != "set_min_rate" {
				t.Fatalf("entry %d: queue entry action %q", i, e.Action)
			}
		}
	}
}

// TestEmitPaperExample validates the backend's output on the §2 running
// example: classification, tag forwarding, and queue reservations all
// present and structurally valid.
func TestEmitPaperExample(t *testing.T) {
	tp := merlin.Example(merlin.Gbps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	src := `
[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 20) -> .* dpi .*
  z : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 80) -> .* at min(10MB/s) ],
max(x, 50MB/s)
`
	pol, err := merlin.ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := merlin.Compile(pol, tp, merlin.Placement{"dpi": {"m1"}},
		merlin.Options{Targets: append(merlin.DefaultTargets(), p4.Name)})
	if err != nil {
		t.Fatal(err)
	}
	art, ok := res.Outputs[p4.Name].(*p4.Artifact)
	if !ok || art.Count() == 0 {
		t.Fatalf("no p4 artifact emitted: %T", res.Outputs[p4.Name])
	}
	validateArtifact(t, tp, art)
	tables := map[string]int{}
	for _, e := range art.TableEntries {
		tables[e.Table]++
	}
	if tables[p4.TableClassifier] == 0 || tables[p4.TableForward] == 0 || tables[p4.TableQueue] == 0 {
		t.Fatalf("pipeline tables not all populated: %v", tables)
	}
	// The guarantee's queued hops must surface as forward_queue actions.
	queued := false
	for _, e := range art.TableEntries {
		if strings.Contains(e.Action, "forward_queue") {
			queued = true
		}
	}
	if !queued {
		t.Fatal("guarantee emitted no queued forward action")
	}
}

// TestEmitDeterministic asserts two emissions of the same IR are
// identical — the property the incremental differ depends on.
func TestEmitDeterministic(t *testing.T) {
	tp := merlin.FatTree(4, merlin.Gbps)
	pol, err := merlin.ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, tp)
	if err != nil {
		t.Fatal(err)
	}
	opts := merlin.Options{Targets: append(merlin.DefaultTargets(), p4.Name)}
	a, err := merlin.Compile(pol, tp, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := codegen.Lookup(p4.Name)
	if !ok {
		t.Fatal("p4 backend not registered")
	}
	re, err := b.Emit(tp, a.IR)
	if err != nil {
		t.Fatal(err)
	}
	if d := b.Diff(a.Outputs[p4.Name], re); !d.Empty() {
		t.Fatalf("re-emission of the same IR diffs: %d install / %d remove", len(d.Install), len(d.Remove))
	}
}

// TestZooSmoke compiles a two-statement policy (one guarantee, one path
// constraint) with the p4 target across the synthetic Topology Zoo and
// validates every emitted entry. -short samples the families sparsely;
// the full sweep covers every 10th network.
func TestZooSmoke(t *testing.T) {
	stride := 10
	if testing.Short() {
		stride = 64
	}
	entries := zoo.Entries()
	for i := 0; i < len(entries); i += stride {
		e := entries[i]
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			tp := zoo.Generate(e.Index, 2)
			hosts := tp.Hosts()
			if len(hosts) < 2 {
				t.Skipf("%s: only %d hosts", e.Name, len(hosts))
			}
			ids := tp.Identities()
			a, _ := ids.Of(hosts[0])
			b, _ := ids.Of(hosts[len(hosts)-1])
			src := fmt.Sprintf(`
[ g : (eth.src = %s and eth.dst = %s) -> .* at min(5Mbps)
  p : (eth.src = %s and eth.dst = %s) -> .* ]`, a.MAC, b.MAC, b.MAC, a.MAC)
			pol, err := merlin.ParsePolicy(src, tp)
			if err != nil {
				t.Fatal(err)
			}
			opts := merlin.Options{
				NoDefault: true,
				Greedy:    e.Switches > 100,
				Targets:   append(merlin.DefaultTargets(), p4.Name),
			}
			res, err := merlin.Compile(pol, tp, nil, opts)
			if err != nil {
				t.Fatalf("%s (%s, %d switches): compile: %v", e.Name, e.Family, e.Switches, err)
			}
			art, ok := res.Outputs[p4.Name].(*p4.Artifact)
			if !ok || art.Count() == 0 {
				t.Fatalf("%s: no p4 entries", e.Name)
			}
			validateArtifact(t, tp, art)
			if want := len(res.IR.Rules) + len(res.IR.Queues); art.Count() != want {
				t.Fatalf("%s: %d entries, want %d", e.Name, art.Count(), want)
			}
		})
	}
}
