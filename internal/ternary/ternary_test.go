package ternary

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"merlin/internal/pred"
)

func tst(f, v string) pred.Test { return pred.Test{Field: pred.Field(f), Value: v} }

func TestRangeToPrefixesCorners(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		bits   int
		want   []Prefix
	}{
		// Full domain: one zero-length prefix.
		{0, 65535, 16, []Prefix{{0, 0}}},
		// Singleton: one full-length prefix.
		{1, 1, 16, []Prefix{{1, 16}}},
		{0, 0, 16, []Prefix{{0, 16}}},
		// Aligned block: one prefix.
		{1024, 2047, 16, []Prefix{{1024, 6}}},
		// Unaligned start: singleton then block.
		{3, 7, 16, []Prefix{{3, 16}, {4, 14}}},
		// Top of the domain.
		{65535, 65535, 16, []Prefix{{65535, 16}}},
		{32768, 65535, 16, []Prefix{{32768, 1}}},
		// Small field.
		{0, 255, 8, []Prefix{{0, 0}}},
	}
	for _, c := range cases {
		got := RangeToPrefixes(c.lo, c.hi, c.bits)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("RangeToPrefixes(%d, %d, %d) = %v, want %v", c.lo, c.hi, c.bits, got, c.want)
		}
		if n := CountPrefixes(c.lo, c.hi, c.bits); n != len(c.want) {
			t.Errorf("CountPrefixes(%d, %d, %d) = %d, want %d", c.lo, c.hi, c.bits, n, len(c.want))
		}
	}
	// Inverted and out-of-domain ranges produce nothing.
	if got := RangeToPrefixes(5, 3, 16); len(got) != 0 {
		t.Errorf("inverted range expanded to %v", got)
	}
	if got := RangeToPrefixes(0, 1<<16, 16); len(got) != 0 {
		t.Errorf("out-of-domain range expanded to %v", got)
	}
}

// Property: the prefix cover is exact — every value in [lo, hi] matches
// exactly one prefix, every value outside matches none.
func TestRangeToPrefixesCoverExact(t *testing.T) {
	cases := [][2]uint64{{0, 0}, {3, 7}, {1, 254}, {80, 200}, {100, 100}, {0, 255}, {128, 255}, {127, 128}}
	for _, c := range cases {
		ps := RangeToPrefixes(c[0], c[1], 8)
		for v := uint64(0); v < 256; v++ {
			hits := 0
			for _, p := range ps {
				mask := prefixMask(p.Len, 8)
				if v&mask == p.Value {
					hits++
				}
			}
			want := 0
			if v >= c[0] && v <= c[1] {
				want = 1
			}
			if hits != want {
				t.Fatalf("range [%d,%d]: value %d matched %d prefixes, want %d (cover %v)", c[0], c[1], v, hits, want, ps)
			}
		}
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		f      string
		s      string
		lo, hi uint64
		bad    bool
	}{
		{"eth.src", "00:00:00:00:00:0a", 10, 10, false},
		{"eth.dst", "ff:ff:ff:ff:ff:ff", 0xffffffffffff, 0xffffffffffff, false},
		{"eth.src", "0a:0b", 0, 0, true},
		{"ip.src", "10.0.0.1", 10<<24 | 1, 10<<24 | 1, false},
		{"ip.dst", "1.2.3", 0, 0, true},
		{"ip.proto", "tcp", 6, 6, false},
		{"ip.proto", "udp", 17, 17, false},
		{"ip.proto", "6", 6, 6, false},
		{"eth.typ", "0x800", 0x800, 0x800, false},
		{"tcp.dst", "80", 80, 80, false},
		{"tcp.dst", "80-443", 80, 443, false},
		{"udp.src", "1000-2000", 1000, 2000, false},
		{"tcp.dst", "443-80", 0, 0, true}, // empty range
		{"ip.tos", "1-3", 0, 0, true},     // ranges only on port fields
		{"vlan.id", "5000", 0, 0, true},   // exceeds 12 bits
		{"tcp.dst", "70000", 0, 0, true},  // exceeds 16 bits
		{"payload", "x", 0, 0, true},      // no ternary encoding
		{"bogus.field", "1", 0, 0, true},  // unknown field
		{"tcp.dst", "eighty", 0, 0, true}, // not a number
	}
	for _, c := range cases {
		lo, hi, err := ParseValue(pred.Field(c.f), c.s)
		if c.bad {
			if err == nil {
				t.Errorf("ParseValue(%s, %q): expected error, got (%d, %d)", c.f, c.s, lo, hi)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseValue(%s, %q): %v", c.f, c.s, err)
			continue
		}
		if lo != c.lo || hi != c.hi {
			t.Errorf("ParseValue(%s, %q) = (%d, %d), want (%d, %d)", c.f, c.s, lo, hi, c.lo, c.hi)
		}
	}
}

func TestExpandBasics(t *testing.T) {
	// True: one match-all row.
	rows, err := Expand(pred.TruePred{}, Options{})
	if err != nil || len(rows) != 1 || len(rows[0]) != 0 {
		t.Fatalf("Expand(true) = %v, %v", rows, err)
	}
	// False: no rows.
	rows, err = Expand(pred.FalsePred{}, Options{})
	if err != nil || len(rows) != 0 {
		t.Fatalf("Expand(false) = %v, %v", rows, err)
	}
	// Single exact test: one full-mask row.
	rows, err = Expand(tst("tcp.dst", "80"), Options{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("Expand(tcp.dst=80) = %v, %v", rows, err)
	}
	if got := rows[0].String(); got != "tcp.dst=0x0050/0xffff" {
		t.Errorf("row = %q", got)
	}
	// Contradictory pins drop the cube.
	p := pred.Conj(tst("tcp.dst", "80"), tst("tcp.dst", "443"))
	rows, err = Expand(p, Options{})
	if err != nil || len(rows) != 0 {
		t.Fatalf("contradiction = %v, %v", rows, err)
	}
	// Contradictory exact-vs-range intersection.
	p = pred.Conj(tst("tcp.dst", "80"), tst("tcp.dst", "100-200"))
	rows, err = Expand(p, Options{})
	if err != nil || len(rows) != 0 {
		t.Fatalf("exact outside range = %v, %v", rows, err)
	}
	// Two distinct same-field values in one conjunction are unsatisfiable
	// under pred's string-equality semantics (PositiveCubes drops the
	// cube), even when the value strings denote overlapping ranges — the
	// ternary layer inherits the classifier's semantics, it does not
	// reinterpret them.
	p = pred.Conj(tst("tcp.dst", "80-120"), tst("tcp.dst", "100-200"))
	rows, err = Expand(p, Options{SupportsRange: true})
	if err != nil || len(rows) != 0 {
		t.Fatalf("same-field conjunction = %v, %v", rows, err)
	}
}

func TestExpandRangeModes(t *testing.T) {
	p := tst("tcp.dst", "3-7")
	native, err := Expand(p, Options{SupportsRange: true})
	if err != nil || len(native) != 1 || !native[0][0].Range {
		t.Fatalf("native range = %v, %v", native, err)
	}
	expanded, err := Expand(p, Options{})
	if err != nil || len(expanded) != 2 {
		t.Fatalf("prefix expansion = %v, %v", expanded, err)
	}
	for _, r := range expanded {
		if r[0].Range {
			t.Errorf("prefix mode emitted a range match: %v", r)
		}
	}
}

func TestExpandDedupAndSubsumption(t *testing.T) {
	// Duplicate cubes collapse.
	p := pred.Disj(tst("tcp.dst", "80"), tst("tcp.dst", "80"))
	rows, err := Expand(p, Options{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("dup cubes = %v, %v", rows, err)
	}
	// A cube subsumed by a wider one is eliminated: tcp.dst=80 or true.
	p = pred.Disj(tst("tcp.dst", "80"), pred.TruePred{})
	rows, err = Expand(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Order is deterministic (cube order), so the specific row comes
	// first and the match-all row cannot subsume it from behind; but the
	// match-all row itself must survive and the narrow one is NOT removed
	// (it precedes the wider). Verify the wider-first case instead:
	p = pred.Disj(pred.TruePred{}, tst("tcp.dst", "80"))
	rows, err = Expand(p, Options{})
	if err != nil || len(rows) != 1 || len(rows[0]) != 0 {
		t.Fatalf("subsumption = %v, %v", rows, err)
	}
	// Prefix-level subsumption: 0-65535 covers 80.
	p = pred.Disj(tst("tcp.dst", "0-65535"), tst("tcp.dst", "80"))
	rows, err = Expand(p, Options{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("prefix subsumption = %v, %v", rows, err)
	}
}

func TestExpandDeterministic(t *testing.T) {
	p := pred.Disj(
		pred.Conj(tst("ip.proto", "tcp"), tst("tcp.dst", "1000-2000")),
		pred.Conj(tst("ip.src", "10.0.0.1"), tst("ip.dst", "10.0.0.2")),
		tst("eth.typ", "2048"),
	)
	a, err := Expand(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is nondeterministic")
	}
}

func TestExpandRowLimit(t *testing.T) {
	// 4 range tests on distinct fields, each with a multi-prefix cover,
	// cross-multiply past a tiny MaxRows.
	p := pred.Conj(
		tst("tcp.src", "3-12000"),
		tst("tcp.dst", "3-12000"),
		tst("udp.src", "3-12000"),
		tst("udp.dst", "3-12000"),
	)
	_, err := Expand(p, Options{MaxRows: 100})
	if err == nil || !strings.Contains(err.Error(), "expansion too large") {
		t.Fatalf("expected row-limit error, got %v", err)
	}
	// With native ranges the same predicate is 1 row.
	rows, err := Expand(p, Options{MaxRows: 100, SupportsRange: true})
	if err != nil || len(rows) != 1 {
		t.Fatalf("native ranges = %v, %v", rows, err)
	}
}

// Expand must surface pred's own cube-expansion bound as an error, same
// as the symbolic classifier's maxExpandCubes overflow.
func TestExpandCubeOverflow(t *testing.T) {
	// 17 two-way disjunctions conjoined: 2^17 cubes > 1<<16.
	var parts []pred.Pred
	for i := 0; i < 17; i++ {
		parts = append(parts, pred.Disj(
			tst("tcp.dst", fmt.Sprint(i)),
			tst("udp.dst", fmt.Sprint(i)),
		))
	}
	_, err := Expand(pred.Conj(parts...), Options{})
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("expected cube-overflow error, got %v", err)
	}
	// The estimator prices the same predicate without materializing.
	n, err := Estimate(pred.Conj(parts...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1<<17 {
		t.Fatalf("Estimate = %d, want %d", n, 1<<17)
	}
}

func TestExpandUnencodableField(t *testing.T) {
	_, err := Expand(tst("payload", "attack"), Options{})
	if err == nil || !strings.Contains(err.Error(), "no ternary encoding") {
		t.Fatalf("expected encoding error, got %v", err)
	}
	if _, err := Estimate(tst("payload", "attack"), Options{}); err == nil {
		t.Fatal("Estimate accepted an unencodable field")
	}
}

// Estimate is an upper bound on the materialized row count, and exact on
// clean disjoint predicates.
func TestEstimateBounds(t *testing.T) {
	cases := []struct {
		p     pred.Pred
		opt   Options
		exact bool
	}{
		{tst("tcp.dst", "80"), Options{}, true},
		{tst("tcp.dst", "3-7"), Options{}, true}, // 2 prefixes
		{tst("tcp.dst", "3-7"), Options{SupportsRange: true}, true},
		{pred.Disj(tst("tcp.dst", "80"), tst("tcp.dst", "443")), Options{}, true},
		{pred.Conj(tst("ip.proto", "tcp"), tst("tcp.dst", "1-6")), Options{}, true},
		// Duplicate cubes: estimate counts both, expansion dedups.
		{pred.Disj(tst("tcp.dst", "80"), tst("tcp.dst", "80")), Options{}, false},
		// Unsatisfiable cube: counted by estimate, dropped by expansion.
		{pred.Conj(tst("tcp.dst", "80"), tst("tcp.dst", "443")), Options{}, false},
		// Negation: the negated literal costs 1 (its cube survives).
		{pred.Conj(tst("ip.proto", "tcp"), pred.Negate(tst("tcp.dst", "22"))), Options{}, true},
	}
	for i, c := range cases {
		rows, err := Expand(c.p, c.opt)
		if err != nil {
			t.Fatalf("case %d: Expand: %v", i, err)
		}
		est, err := Estimate(c.p, c.opt)
		if err != nil {
			t.Fatalf("case %d: Estimate: %v", i, err)
		}
		if est < len(rows) {
			t.Errorf("case %d: Estimate %d < %d rows — not an upper bound", i, est, len(rows))
		}
		if c.exact && est != len(rows) {
			t.Errorf("case %d: Estimate %d != %d rows (expected exact)", i, est, len(rows))
		}
	}
}

func TestRowCovers(t *testing.T) {
	all := Row(nil)
	port80, _ := Expand(tst("tcp.dst", "80"), Options{})
	proto, _ := Expand(pred.Conj(tst("ip.proto", "6"), tst("tcp.dst", "80")), Options{})
	if !all.Covers(port80[0]) {
		t.Error("match-all must cover tcp.dst=80")
	}
	if port80[0].Covers(all) {
		t.Error("tcp.dst=80 must not cover match-all")
	}
	if !port80[0].Covers(proto[0]) {
		t.Error("tcp.dst=80 must cover proto=6 ∧ tcp.dst=80")
	}
	if proto[0].Covers(port80[0]) {
		t.Error("narrower row must not cover wider")
	}
	// Range covers exact value inside it.
	rng, _ := Expand(tst("tcp.dst", "50-100"), Options{SupportsRange: true})
	if !rng[0].Covers(port80[0]) {
		t.Error("range 50-100 must cover tcp.dst=80")
	}
	out, _ := Expand(tst("tcp.dst", "200"), Options{})
	if rng[0].Covers(out[0]) {
		t.Error("range 50-100 must not cover tcp.dst=200")
	}
}

func TestWithExact(t *testing.T) {
	rows, _ := Expand(tst("tcp.dst", "80"), Options{})
	r, ok, err := rows[0].WithExact("eth.src", "00:00:00:00:00:01")
	if err != nil || !ok {
		t.Fatalf("WithExact: %v %v", ok, err)
	}
	if r.String() != "eth.src=0x000000000001/0xffffffffffff,tcp.dst=0x0050/0xffff" {
		t.Errorf("row = %q", r)
	}
	// Conflicting exact constraint empties the row.
	withSrc, _, _ := Row(nil).WithExact("eth.src", "00:00:00:00:00:01")
	if _, ok, _ := withSrc.WithExact("eth.src", "00:00:00:00:00:02"); ok {
		t.Error("conflicting MACs must be unsatisfiable")
	}
	// Same constraint is idempotent.
	same, ok, _ := withSrc.WithExact("eth.src", "00:00:00:00:00:01")
	if !ok || len(same) != 1 {
		t.Errorf("idempotent fold = %v %v", same, ok)
	}
}
