// Package ternary is the predicate→ternary-entry expansion pass of the
// Backend API v2: it turns the compiler's symbolic classifier predicates
// into the value/mask rows a hardware TCAM actually stores. A predicate
// first expands to its positive DNF cubes (pred.PositiveCubes — the same
// classifier expansion the symbolic backends rely on for first-match
// shadowing), then each cube becomes one or more rows: every equality
// test is a full-mask field match, and a port-range test (a value of the
// form "lo-hi" on a 16-bit port field) either stays a single native
// range match, when the consuming table supports ranges, or expands to
// its minimal prefix cover (RangeToPrefixes), multiplying rows. Row
// order is deterministic, exact duplicates are always eliminated, and a
// bounded subsumption pass drops rows covered by an earlier row of the
// same expansion.
//
// Estimate prices the same expansion without materializing any row —
// structural recursion over the predicate (pred.EstimateCubes) with
// range literals weighted by their prefix count — so table-budget
// admission checks and the provisioning MIP's per-switch budget rows can
// run at O(predicate) cost.
package ternary

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"merlin/internal/pred"
)

// DefaultMaxRows bounds one predicate's materialized expansion, matching
// pred's own cube-expansion bound: policy predicates are shallow, so
// hitting it indicates a pathological input, not a capacity problem.
const DefaultMaxRows = 1 << 16

// subsumeLimit bounds the O(n²) redundancy-elimination pass; expansions
// beyond it keep only the (always-on) exact-duplicate elimination.
const subsumeLimit = 512

// Options tune an expansion for one consuming table model.
type Options struct {
	// SupportsRange keeps port-range tests as single native range
	// matches; false (the common TCAM) expands each to its prefix cover.
	SupportsRange bool
	// MaxRows bounds the materialized row count; 0 means DefaultMaxRows.
	MaxRows int
}

func (o Options) maxRows() int {
	if o.MaxRows > 0 {
		return o.MaxRows
	}
	return DefaultMaxRows
}

// FieldMatch is one field's ternary constraint within a row: match when
// packetValue & Mask == Value, or Lo ≤ packetValue ≤ Hi for a native
// range match (Range true, only produced under Options.SupportsRange).
type FieldMatch struct {
	Field pred.Field
	// Bits is the field's width.
	Bits int
	// Value and Mask are the value/mask pair (Mask's set bits are the
	// cared-about bits; Value is zero outside Mask).
	Value, Mask uint64
	// Range marks a native range match over [Lo, Hi] instead.
	Range  bool
	Lo, Hi uint64
}

// String renders the match in the canonical audit form.
func (m FieldMatch) String() string {
	if m.Range {
		return fmt.Sprintf("%s=%d..%d", m.Field, m.Lo, m.Hi)
	}
	w := (m.Bits + 3) / 4
	return fmt.Sprintf("%s=0x%0*x/0x%0*x", m.Field, w, m.Value, w, m.Mask)
}

// Row is one ternary entry's header match: a conjunction of field
// constraints in canonical field order. A nil or empty row matches
// everything.
type Row []FieldMatch

// String renders the row, comma-joined; the empty row renders as "*".
func (r Row) String() string {
	if len(r) == 0 {
		return "*"
	}
	parts := make([]string, len(r))
	for i, m := range r {
		parts[i] = m.String()
	}
	return strings.Join(parts, ",")
}

// fieldOrder is the canonical TCAM key layout; rows list their
// constraints in this order.
var fieldOrder = []pred.Field{
	"eth.src", "eth.dst", "eth.typ", "vlan.id",
	"ip.src", "ip.dst", "ip.proto", "ip.tos",
	"tcp.src", "tcp.dst", "udp.src", "udp.dst", "icmp.type",
}

var fieldIndex = func() map[pred.Field]int {
	m := make(map[pred.Field]int, len(fieldOrder))
	for i, f := range fieldOrder {
		m[f] = i
	}
	return m
}()

var fieldBits = map[pred.Field]int{
	"eth.src": 48, "eth.dst": 48, "eth.typ": 16, "vlan.id": 12,
	"ip.src": 32, "ip.dst": 32, "ip.proto": 8, "ip.tos": 8,
	"tcp.src": 16, "tcp.dst": 16, "udp.src": 16, "udp.dst": 16,
	"icmp.type": 8,
}

// rangeField marks the fields range values are accepted on: the 16-bit
// transport ports (the paper's policies classify on them, and they are
// the fields vendor TCAMs offer range matching for).
var rangeField = map[pred.Field]bool{
	"tcp.src": true, "tcp.dst": true, "udp.src": true, "udp.dst": true,
}

// FieldBits reports a header field's width in the ternary key, and
// whether the field has a ternary encoding at all (payload and unknown
// fields do not).
func FieldBits(f pred.Field) (int, bool) {
	b, ok := fieldBits[f]
	return b, ok
}

// Width is the total canonical key width in bits — what a backend's
// TableModel.Width must cover for full-fidelity classification.
func Width() int {
	w := 0
	for _, f := range fieldOrder {
		w += fieldBits[f]
	}
	return w
}

// ParseValue interprets one test value for a field: an exact value
// (lo == hi) or, on the port fields, an inclusive "lo-hi" range. MAC
// fields take the colon-hex form, IP fields dotted quads, and numeric
// fields decimal or 0x-hex, with the common ip.proto names (tcp, udp,
// icmp) accepted.
func ParseValue(f pred.Field, s string) (lo, hi uint64, err error) {
	nbits, ok := fieldBits[f]
	if !ok {
		return 0, 0, fmt.Errorf("ternary: field %q has no ternary encoding", f)
	}
	switch f {
	case "eth.src", "eth.dst":
		lo, err = parseMAC(s)
		hi = lo
	case "ip.src", "ip.dst":
		lo, err = parseIP(s)
		hi = lo
	default:
		if i := strings.IndexByte(s, '-'); i > 0 && rangeField[f] {
			lo, err = parseNum(f, s[:i])
			if err == nil {
				hi, err = parseNum(f, s[i+1:])
			}
			if err == nil && lo > hi {
				err = fmt.Errorf("ternary: empty range %q on %s", s, f)
			}
		} else {
			lo, err = parseNum(f, s)
			hi = lo
		}
	}
	if err != nil {
		return 0, 0, err
	}
	if max := uint64(1)<<nbits - 1; hi > max {
		return 0, 0, fmt.Errorf("ternary: value %q exceeds %d-bit field %s", s, nbits, f)
	}
	return lo, hi, nil
}

func parseMAC(s string) (uint64, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return 0, fmt.Errorf("ternary: bad MAC %q", s)
	}
	var v uint64
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return 0, fmt.Errorf("ternary: bad MAC %q", s)
		}
		v = v<<8 | b
	}
	return v, nil
}

func parseIP(s string) (uint64, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ternary: bad IP %q", s)
	}
	var v uint64
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ternary: bad IP %q", s)
		}
		v = v<<8 | b
	}
	return v, nil
}

var protoNames = map[string]uint64{"icmp": 1, "tcp": 6, "udp": 17}

func parseNum(f pred.Field, s string) (uint64, error) {
	if f == "ip.proto" {
		if v, ok := protoNames[s]; ok {
			return v, nil
		}
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("ternary: bad %s value %q", f, s)
	}
	return v, nil
}

// Prefix is one block of a range's prefix cover: the Len top bits of
// Value are fixed, the rest don't-care.
type Prefix struct {
	Value uint64
	Len   int
}

// RangeToPrefixes covers the inclusive range [lo, hi] over a bits-wide
// field with the minimal ordered set of prefixes (greedy largest-aligned
// -block-first — the standard range-to-prefix construction, at most
// 2·bits−2 prefixes). An inverted range returns nil.
func RangeToPrefixes(lo, hi uint64, nbits int) []Prefix {
	out := make([]Prefix, 0, 4)
	rangePrefixes(lo, hi, nbits, func(v uint64, l int) {
		out = append(out, Prefix{Value: v, Len: l})
	})
	return out
}

// CountPrefixes is len(RangeToPrefixes(lo, hi, nbits)) without building
// the slice — the estimator's per-range weight.
func CountPrefixes(lo, hi uint64, nbits int) int {
	n := 0
	rangePrefixes(lo, hi, nbits, func(uint64, int) { n++ })
	return n
}

func rangePrefixes(lo, hi uint64, nbits int, emit func(v uint64, l int)) {
	if nbits <= 0 || nbits > 63 || hi >= uint64(1)<<nbits {
		return
	}
	for lo <= hi {
		// Largest block that starts at lo: bounded by lo's alignment and
		// by the remaining span.
		sz := nbits
		if lo != 0 {
			if tz := bits.TrailingZeros64(lo); tz < sz {
				sz = tz
			}
		}
		for sz > 0 && lo+(uint64(1)<<sz)-1 > hi {
			sz--
		}
		emit(lo, nbits-sz)
		next := lo + uint64(1)<<sz
		if next <= lo { // wrapped: the block ended at the field's top value
			return
		}
		lo = next
	}
}

// prefixMask is the mask fixing the top l of nbits bits.
func prefixMask(l, nbits int) uint64 {
	if l <= 0 {
		return 0
	}
	return ((uint64(1) << l) - 1) << (nbits - l)
}

// fullMask is the all-ones mask of an nbits-wide field.
func fullMask(nbits int) uint64 { return uint64(1)<<nbits - 1 }

// interval is one field's constraint while a cube is being normalized.
type interval struct {
	f      pred.Field
	nbits  int
	lo, hi uint64
}

// Expand materializes p's ternary rows. Cubes come from
// pred.PositiveCubes (so negated literals are, as in every symbolic
// backend, enforced by the shadowing higher-priority rules rather than
// encoded); within a cube, repeated tests on one field intersect (an
// empty intersection drops the cube as unsatisfiable), and each
// remaining port range either stays native (Options.SupportsRange) or
// multiplies the cube by its prefix cover. Errors are returned for
// predicates over fields with no ternary encoding (payload) and for
// expansions past Options.MaxRows — the same "expansion too large"
// condition pred enforces on cube counts.
func Expand(p pred.Pred, opt Options) ([]Row, error) {
	cubes, err := pred.PositiveCubes(p)
	if err != nil {
		return nil, fmt.Errorf("ternary: %w", err)
	}
	if len(cubes) == 0 {
		return nil, nil // unsatisfiable: no rows
	}
	limit := opt.maxRows()
	var rows []Row
	seen := map[string]bool{}
	for _, cube := range cubes {
		ivs, ok, err := normalizeCube(cube)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // contradictory field constraints: unsatisfiable cube
		}
		produced, err := cubeRows(ivs, opt, limit-len(rows))
		if err != nil {
			return nil, err
		}
		for _, r := range produced {
			k := r.String()
			if seen[k] {
				continue
			}
			seen[k] = true
			rows = append(rows, r)
		}
	}
	return eliminateSubsumed(rows), nil
}

// Estimate bounds len(Expand(p, opt)) without materializing any row:
// pred.EstimateCubes walks the predicate once, weighting each positive
// port-range literal by its prefix count (1 under SupportsRange). It is
// an upper bound — unsatisfiable cubes and duplicate rows still count —
// which is the safe direction for admission checks. Unencodable literals
// surface as an error, exactly as Expand would report them.
func Estimate(p pred.Pred, opt Options) (int, error) {
	var encErr error
	w, err := pred.EstimateCubes(p, func(t pred.Test, negated bool) float64 {
		if negated {
			return 1 // dropped from the positive cube; the cube itself remains
		}
		nbits, ok := fieldBits[t.Field]
		if !ok {
			if encErr == nil {
				encErr = fmt.Errorf("ternary: field %q has no ternary encoding", t.Field)
			}
			return 1
		}
		lo, hi, perr := ParseValue(t.Field, t.Value)
		if perr != nil {
			if encErr == nil {
				encErr = perr
			}
			return 1
		}
		if lo == hi || opt.SupportsRange {
			return 1
		}
		return float64(CountPrefixes(lo, hi, nbits))
	})
	if err != nil {
		return 0, err
	}
	if encErr != nil {
		return 0, encErr
	}
	if w > math.MaxInt32 {
		return math.MaxInt32, nil
	}
	return int(w), nil
}

// normalizeCube intersects a cube's tests per field into intervals in
// canonical field order. ok is false when some field's constraints are
// contradictory (e.g. tcp.dst = 80 ∧ tcp.dst = 90-99).
func normalizeCube(cube []pred.Test) (ivs []interval, ok bool, err error) {
	byField := map[pred.Field]*interval{}
	for _, t := range cube {
		nbits, known := fieldBits[t.Field]
		if !known {
			return nil, false, fmt.Errorf("ternary: field %q has no ternary encoding", t.Field)
		}
		lo, hi, perr := ParseValue(t.Field, t.Value)
		if perr != nil {
			return nil, false, perr
		}
		iv := byField[t.Field]
		if iv == nil {
			byField[t.Field] = &interval{f: t.Field, nbits: nbits, lo: lo, hi: hi}
			continue
		}
		if lo > iv.lo {
			iv.lo = lo
		}
		if hi < iv.hi {
			iv.hi = hi
		}
		if iv.lo > iv.hi {
			return nil, false, nil
		}
	}
	ivs = make([]interval, 0, len(byField))
	for _, iv := range byField {
		ivs = append(ivs, *iv)
	}
	sort.Slice(ivs, func(i, j int) bool { return fieldIndex[ivs[i].f] < fieldIndex[ivs[j].f] })
	return ivs, true, nil
}

// cubeRows crosses one normalized cube's per-field match options into
// rows, bounded by budget rows.
func cubeRows(ivs []interval, opt Options, budget int) ([]Row, error) {
	options := make([][]FieldMatch, len(ivs))
	total := 1
	for i, iv := range ivs {
		switch {
		case iv.lo == iv.hi:
			options[i] = []FieldMatch{{Field: iv.f, Bits: iv.nbits, Value: iv.lo, Mask: fullMask(iv.nbits)}}
		case opt.SupportsRange:
			options[i] = []FieldMatch{{Field: iv.f, Bits: iv.nbits, Range: true, Lo: iv.lo, Hi: iv.hi}}
		default:
			ps := RangeToPrefixes(iv.lo, iv.hi, iv.nbits)
			ms := make([]FieldMatch, len(ps))
			for k, p := range ps {
				ms[k] = FieldMatch{Field: iv.f, Bits: iv.nbits, Value: p.Value, Mask: prefixMask(p.Len, iv.nbits)}
			}
			options[i] = ms
		}
		total *= len(options[i])
		if total > budget {
			return nil, fmt.Errorf("ternary: expansion too large (> %d rows)", opt.maxRows())
		}
	}
	rows := make([]Row, 0, total)
	var cross func(i int, acc Row)
	cross = func(i int, acc Row) {
		if i == len(options) {
			rows = append(rows, append(Row(nil), acc...))
			return
		}
		for _, m := range options[i] {
			cross(i+1, append(acc, m))
		}
	}
	cross(0, make(Row, 0, len(options)))
	return rows, nil
}

// eliminateSubsumed drops every row covered by an earlier row — the
// redundancy-elimination pass. Safe because all rows of one expansion
// share one action; bounded to subsumeLimit rows so a pathological
// expansion stays linear.
func eliminateSubsumed(rows []Row) []Row {
	if len(rows) < 2 || len(rows) > subsumeLimit {
		return rows
	}
	kept := rows[:0]
	for _, r := range rows {
		covered := false
		for _, k := range kept {
			if k.Covers(r) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, r)
		}
	}
	return kept
}

// Covers reports whether every packet matching o also matches r: each of
// r's constraints must be implied by o's constraint on the same field.
func (r Row) Covers(o Row) bool {
	for _, m := range r {
		om, ok := o.match(m.Field)
		if !ok {
			return false // r constrains a field o leaves wild
		}
		if !m.implies(om) {
			return false
		}
	}
	return true
}

func (r Row) match(f pred.Field) (FieldMatch, bool) {
	for _, m := range r {
		if m.Field == f {
			return m, true
		}
	}
	return FieldMatch{}, false
}

// implies reports whether o's constraint is at least as tight as m's:
// every value passing o also passes m.
func (m FieldMatch) implies(o FieldMatch) bool {
	switch {
	case !m.Range && !o.Range:
		return o.Mask&m.Mask == m.Mask && o.Value&m.Mask == m.Value
	case m.Range && o.Range:
		return m.Lo <= o.Lo && o.Hi <= m.Hi
	case m.Range && !o.Range:
		// o is value/mask; it implies the range only if o pins every bit
		// (exact) and the value falls inside.
		return o.Mask == fullMask(o.Bits) && m.Lo <= o.Value && o.Value <= m.Hi
	default: // m is value/mask, o a range: implied only for the trivial mask
		return m.Mask == 0
	}
}

// WithExact intersects the row with an exact test on f (the structural
// MAC fields of an IR match), returning the narrowed row and whether the
// intersection is satisfiable.
func (r Row) WithExact(f pred.Field, value string) (Row, bool, error) {
	nbits, ok := fieldBits[f]
	if !ok {
		return nil, false, fmt.Errorf("ternary: field %q has no ternary encoding", f)
	}
	v, hi, err := ParseValue(f, value)
	if err != nil {
		return nil, false, err
	}
	if v != hi {
		return nil, false, fmt.Errorf("ternary: exact constraint on %s is a range", f)
	}
	exact := FieldMatch{Field: f, Bits: nbits, Value: v, Mask: fullMask(nbits)}
	out := make(Row, 0, len(r)+1)
	placed := false
	for _, m := range r {
		if m.Field != f {
			if !placed && fieldIndex[m.Field] > fieldIndex[f] {
				out = append(out, exact)
				placed = true
			}
			out = append(out, m)
			continue
		}
		// Intersect with the existing constraint on f.
		if m.Range {
			if v < m.Lo || v > m.Hi {
				return nil, false, nil
			}
		} else if v&m.Mask != m.Value {
			return nil, false, nil
		}
		if !placed {
			out = append(out, exact)
			placed = true
		}
	}
	if !placed {
		out = append(out, exact)
	}
	return out, true, nil
}

// Matches evaluates the row against a packet's rendered field map (the
// packet.Fields form) — the differential-test oracle bridging rows back
// to the symbolic classifier's semantics. Fields absent from the packet
// fail their constraints, mirroring pred.Matches.
func (r Row) Matches(fields map[pred.Field]string) bool {
	for _, m := range r {
		s, ok := fields[m.Field]
		if !ok {
			return false
		}
		v, hi, err := ParseValue(m.Field, s)
		if err != nil || v != hi {
			return false
		}
		if m.Range {
			if v < m.Lo || v > m.Hi {
				return false
			}
		} else if v&m.Mask != m.Value {
			return false
		}
	}
	return true
}
