package ternary

import (
	"math/rand"
	"strconv"
	"testing"

	"merlin/internal/packet"
	"merlin/internal/pred"
)

// The differential tests check that an expanded ternary table is
// semantically equivalent to the symbolic classifier it came from: a
// packet matches some row of Expand(p) exactly when pred.Matches(p)
// accepts its rendered field map. For negation-free predicates the
// equivalence is exact; with negations the rows over-approximate (the
// positive-cube expansion drops negated literals — in the dataplane the
// shadowing higher-priority rules enforce them), so row-match must be
// implied by, but need not imply, the symbolic match.

// fieldUniverse is a small value universe per field so random packets
// and random predicates collide often enough to exercise both outcomes.
var fieldUniverse = map[pred.Field][]string{
	"eth.src":  {"00:00:00:00:00:01", "00:00:00:00:00:02", "00:00:00:00:00:03"},
	"eth.dst":  {"00:00:00:00:00:01", "00:00:00:00:00:02", "00:00:00:00:00:03"},
	"eth.typ":  {"2048", "2054"},
	"vlan.id":  {"10", "20"},
	"ip.src":   {"10.0.0.1", "10.0.0.2", "192.168.1.7"},
	"ip.dst":   {"10.0.0.1", "10.0.0.2", "192.168.1.7"},
	"ip.proto": {"6", "17"},
	"ip.tos":   {"0", "8"},
	"tcp.src":  {"1000", "2000", "33000"},
	"tcp.dst":  {"80", "443", "8080"},
	"udp.src":  {"53", "123"},
	"udp.dst":  {"53", "5353"},
}

var universeFields = func() []pred.Field {
	var fs []pred.Field
	for _, f := range fieldOrder {
		if len(fieldUniverse[f]) > 0 {
			fs = append(fs, f)
		}
	}
	return fs
}()

func randTest(rng *rand.Rand) pred.Test {
	f := universeFields[rng.Intn(len(universeFields))]
	vs := fieldUniverse[f]
	return pred.Test{Field: f, Value: vs[rng.Intn(len(vs))]}
}

// randPred builds a random predicate over the universe; withNeg allows
// Not nodes.
func randPred(rng *rand.Rand, depth int, withNeg bool) pred.Pred {
	if depth == 0 || rng.Intn(3) == 0 {
		return randTest(rng)
	}
	switch rng.Intn(7) {
	case 0, 1, 2:
		return pred.Conj(randPred(rng, depth-1, withNeg), randPred(rng, depth-1, withNeg))
	case 3, 4, 5:
		return pred.Disj(randPred(rng, depth-1, withNeg), randPred(rng, depth-1, withNeg))
	default:
		if withNeg {
			return pred.Negate(randPred(rng, depth-1, withNeg))
		}
		return pred.Conj(randPred(rng, depth-1, withNeg), randPred(rng, depth-1, withNeg))
	}
}

// randFields draws a random rendered packet over the universe; each
// field is present with probability ~3/4 (absent fields fail symbolic
// and ternary matching alike).
func randFields(rng *rand.Rand) map[pred.Field]string {
	m := map[pred.Field]string{}
	for f, vs := range fieldUniverse {
		if rng.Intn(4) == 0 {
			continue
		}
		m[f] = vs[rng.Intn(len(vs))]
	}
	return m
}

func rowsMatch(rows []Row, fields map[pred.Field]string) bool {
	for _, r := range rows {
		if r.Matches(fields) {
			return true
		}
	}
	return false
}

func TestDifferentialExactPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, opt := range []Options{{}, {SupportsRange: true}} {
		matched, missed := 0, 0
		for trial := 0; trial < 400; trial++ {
			p := randPred(rng, 3, false)
			rows, err := Expand(p, opt)
			if err != nil {
				t.Fatalf("trial %d: Expand: %v", trial, err)
			}
			for pkt := 0; pkt < 25; pkt++ {
				fields := randFields(rng)
				sym := pred.Matches(p, fields)
				tern := rowsMatch(rows, fields)
				if sym != tern {
					t.Fatalf("trial %d (opt %+v): symbolic=%v ternary=%v\npred: %v\nrows: %v\npacket: %v",
						trial, opt, sym, tern, p, rows, fields)
				}
				if sym {
					matched++
				} else {
					missed++
				}
			}
		}
		// Guard against a vacuous run: both outcomes must occur.
		if matched == 0 || missed == 0 {
			t.Fatalf("degenerate sample: %d matches, %d misses", matched, missed)
		}
	}
}

func TestDifferentialNegatedPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	overapprox := 0
	for trial := 0; trial < 400; trial++ {
		p := randPred(rng, 3, true)
		rows, err := Expand(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: Expand: %v", trial, err)
		}
		for pkt := 0; pkt < 25; pkt++ {
			fields := randFields(rng)
			sym := pred.Matches(p, fields)
			tern := rowsMatch(rows, fields)
			if sym && !tern {
				t.Fatalf("trial %d: ternary rows missed a symbolic match\npred: %v\nrows: %v\npacket: %v",
					trial, p, rows, fields)
			}
			if tern && !sym {
				overapprox++ // expected: dropped negated literal
			}
		}
	}
	if overapprox == 0 {
		t.Fatal("no over-approximation observed: negation sample is degenerate")
	}
}

// Real packets through the real renderer: the ternary rows must agree
// with the symbolic classifier on packet.Fields() output, not just on
// hand-built maps.
func TestDifferentialRenderedPackets(t *testing.T) {
	p := pred.Disj(
		pred.Conj(
			pred.Test{Field: "ip.proto", Value: "6"},
			pred.Test{Field: "tcp.dst", Value: "80"},
		),
		pred.Conj(
			pred.Test{Field: "eth.src", Value: "00:00:00:00:00:01"},
			pred.Test{Field: "ip.dst", Value: "10.0.0.2"},
		),
	)
	rows, err := Expand(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*packet.Packet{
		packet.TCPPacket("00:00:00:00:00:05", "00:00:00:00:00:06", "10.0.0.9", "10.0.0.8", 1234, 80, nil),
		packet.TCPPacket("00:00:00:00:00:05", "00:00:00:00:00:06", "10.0.0.9", "10.0.0.8", 1234, 443, nil),
		packet.TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:06", "10.0.0.9", "10.0.0.2", 1234, 443, nil),
		packet.UDPPacket("00:00:00:00:00:01", "00:00:00:00:00:06", "10.0.0.9", "10.0.0.2", 53, 53, nil),
		packet.UDPPacket("00:00:00:00:00:02", "00:00:00:00:00:06", "10.0.0.9", "10.0.0.3", 53, 53, nil),
	}
	for i, pkt := range pkts {
		fields := pkt.Fields()
		if sym, tern := pkt.Matches(p), rowsMatch(rows, fields); sym != tern {
			t.Errorf("packet %d: symbolic=%v ternary=%v (fields %v)", i, sym, tern, fields)
		}
	}
}

// Range semantics: the symbolic classifier cannot interpret "lo-hi"
// (pred.Matches is string equality), so ranges are checked against the
// interval oracle directly — native range rows and their prefix covers
// must accept exactly the ports in [lo, hi], for a full 16-bit sweep.
func TestDifferentialRangeSweep(t *testing.T) {
	ranges := [][2]int{{0, 65535}, {1000, 2000}, {0, 0}, {65535, 65535}, {1, 1023}, {3, 7}, {32767, 32768}}
	for _, r := range ranges {
		p := pred.Conj(
			pred.Test{Field: "ip.proto", Value: "6"},
			pred.Test{Field: "tcp.dst", Value: strconv.Itoa(r[0]) + "-" + strconv.Itoa(r[1])},
		)
		native, err := Expand(p, Options{SupportsRange: true})
		if err != nil {
			t.Fatal(err)
		}
		prefixes, err := Expand(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fields := map[pred.Field]string{"ip.proto": "6"}
		for port := 0; port <= 65535; port++ {
			fields["tcp.dst"] = strconv.Itoa(port)
			want := port >= r[0] && port <= r[1]
			if got := rowsMatch(native, fields); got != want {
				t.Fatalf("range [%d,%d] native: port %d matched=%v want %v", r[0], r[1], port, got, want)
			}
			if got := rowsMatch(prefixes, fields); got != want {
				t.Fatalf("range [%d,%d] prefix: port %d matched=%v want %v", r[0], r[1], port, got, want)
			}
		}
	}
}
