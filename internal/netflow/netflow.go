// Package netflow solves minimum-cost network flow with a spanning-tree
// primal network simplex. It is the fast path behind the provisioning
// solver: a shard whose capacity constraints are provably redundant is a
// pure node-arc-incidence problem, whose basis matrices are spanning trees
// — every pivot is a cycle update instead of a factorized linear solve,
// and integral supplies and capacities make every basic solution integral,
// so the LP relaxation needs no branch and bound at all (the total
// unimodularity argument of network-flow theory).
//
// The implementation keeps the classic tree arrays (parent, parent-arc,
// depth) plus node potentials, prices with Bland's least-index entering
// rule for determinism, and bounds pivots so a (theoretically possible)
// degenerate cycle degrades into a clean Limit status the caller can fall
// back from, never a hang.
package netflow

import "math"

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	Limit // pivot budget exhausted (degenerate cycling guard)
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return "unknown"
	}
}

// Arc is one directed arc with flow bounds [0, Cap] and unit cost Cost.
type Arc struct {
	From, To int
	Cap      float64 // may be math.Inf(1)
	Cost     float64
}

// Problem is a min-cost flow instance over nodes 0..N-1. Supply[i] > 0
// means node i injects flow, < 0 that it absorbs; supplies must sum to
// (numerically) zero for the instance to be feasible.
type Problem struct {
	N      int
	Arcs   []Arc
	Supply []float64
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	Flow   []float64 // per arc, parallel to Problem.Arcs
	Cost   float64   // Σ Cost·Flow over the real arcs
	Pivots int
}

const tol = 1e-9

// arc status
const (
	atLower int8 = iota
	inTree
	atUpper
)

// Solve runs the primal network simplex. Integral supplies and capacities
// yield integral flows (basic solutions of a node-arc incidence matrix are
// spanning-tree flows).
func Solve(p Problem) Solution {
	n := p.N
	nArcs := len(p.Arcs)
	total := nArcs + n // real arcs + one artificial per node
	root := n

	// bigM exceeds any possible sum of |cost| along a path, so artificial
	// arcs price out of every optimal basis of a feasible instance.
	bigM := 1.0
	for _, a := range p.Arcs {
		bigM += math.Abs(a.Cost)
	}
	bigM *= float64(n + 1)

	from := make([]int, total)
	to := make([]int, total)
	capac := make([]float64, total)
	cost := make([]float64, total)
	for i, a := range p.Arcs {
		from[i], to[i], capac[i], cost[i] = a.From, a.To, a.Cap, a.Cost
	}
	flow := make([]float64, total)
	stat := make([]int8, total)

	// Initial strongly feasible tree: every node hangs off the artificial
	// root through an artificial arc oriented along its supply.
	parent := make([]int, n+1)
	parc := make([]int, n+1) // arc connecting node to its parent
	depth := make([]int, n+1)
	parent[root], parc[root], depth[root] = -1, -1, 0
	for v := 0; v < n; v++ {
		ai := nArcs + v
		s := p.Supply[v]
		if s >= 0 {
			from[ai], to[ai] = v, root
			flow[ai] = s
		} else {
			from[ai], to[ai] = root, v
			flow[ai] = -s
		}
		capac[ai], cost[ai] = math.Inf(1), bigM
		stat[ai] = inTree
		parent[v], parc[v], depth[v] = root, ai, 1
	}

	pot := make([]float64, n+1)     // node potentials, root pinned at 0
	kids := make([][]int, n+1)      // rebuilt each sweep from parent
	order := make([]int, 0, n+1)    // BFS order for potential/depth sweeps
	cycleArc := make([]int, 0, n+1) // pivot scratch
	cycleFwd := make([]bool, 0, n+1)

	// sweep recomputes potentials and depths for the whole tree — O(n) per
	// pivot, plenty for the shard-sized instances this package serves.
	sweep := func() {
		for v := range kids {
			kids[v] = kids[v][:0]
		}
		for v := 0; v <= n; v++ {
			if parent[v] >= 0 {
				kids[parent[v]] = append(kids[parent[v]], v)
			}
		}
		pot[root], depth[root] = 0, 0
		order = append(order[:0], root)
		for qi := 0; qi < len(order); qi++ {
			u := order[qi]
			for _, v := range kids[u] {
				a := parc[v]
				if from[a] == v { // v → u: cost - pot[v] + pot[u] = 0
					pot[v] = cost[a] + pot[u]
				} else { // u → v
					pot[v] = pot[u] - cost[a]
				}
				depth[v] = depth[u] + 1
				order = append(order, v)
			}
		}
	}
	sweep()

	maxPivots := 64*(total+1) + 1024
	pivots := 0
	for {
		if pivots >= maxPivots {
			return Solution{Status: Limit, Pivots: pivots}
		}
		// Bland pricing: least-index eligible real arc. Artificial arcs
		// carry cost bigM and never become attractive again once out of
		// the tree.
		ent := -1
		fwd := true // push along the arc (true) or against it (false)
		for a := 0; a < nArcs; a++ {
			rc := cost[a] - pot[from[a]] + pot[to[a]]
			if stat[a] == atLower && rc < -tol && capac[a] > tol {
				ent, fwd = a, true
				break
			}
			if stat[a] == atUpper && rc > tol {
				ent, fwd = a, false
				break
			}
		}
		if ent < 0 {
			break
		}
		pivots++

		// The pivot cycle: Δ rides the entering arc from u to v (in its
		// push direction) and returns v → u through the tree path over
		// their common ancestor. For each tree arc on that path, flow
		// increases iff the arc points along the return direction: on v's
		// side (walked child→parent) an arc pointing child→parent aligns;
		// on u's side the return runs parent→child, so the test flips.
		// The walk order is fixed by the tree, so the leaving-arc rule
		// below ("first minimum in scan order") is deterministic.
		cycleArc = append(cycleArc[:0], ent)
		cycleFwd = append(cycleFwd[:0], fwd)
		u, v := from[ent], to[ent]
		if !fwd {
			u, v = v, u
		}
		au, av := u, v
		for depth[au] > depth[av] {
			a := parc[au]
			cycleArc = append(cycleArc, a)
			cycleFwd = append(cycleFwd, from[a] != au)
			au = parent[au]
		}
		for depth[av] > depth[au] {
			a := parc[av]
			cycleArc = append(cycleArc, a)
			cycleFwd = append(cycleFwd, from[a] == av)
			av = parent[av]
		}
		for au != av {
			a := parc[au]
			cycleArc = append(cycleArc, a)
			cycleFwd = append(cycleFwd, from[a] != au)
			au = parent[au]
			a = parc[av]
			cycleArc = append(cycleArc, a)
			cycleFwd = append(cycleFwd, from[a] == av)
			av = parent[av]
		}

		// Ratio test: the largest Δ every cycle arc tolerates.
		delta := math.Inf(1)
		leave := -1
		leaveFwd := true
		for i, a := range cycleArc {
			var room float64
			if cycleFwd[i] {
				room = capac[a] - flow[a]
			} else {
				room = flow[a]
			}
			if room < delta-tol {
				delta = room
				leave = a
				leaveFwd = cycleFwd[i]
			}
		}
		if math.IsInf(delta, 1) {
			return Solution{Status: Unbounded, Pivots: pivots}
		}
		if delta < 0 {
			delta = 0
		}
		// Apply Δ around the cycle.
		for i, a := range cycleArc {
			if cycleFwd[i] {
				flow[a] += delta
			} else {
				flow[a] -= delta
			}
		}
		if leave == ent {
			// Bound flip: the entering arc saturated before any tree arc;
			// the tree is unchanged.
			if fwd {
				stat[ent] = atUpper
			} else {
				stat[ent] = atLower
			}
			continue
		}
		// The leaving arc drops to whichever bound it hit.
		if leaveFwd {
			stat[leave] = atUpper
		} else {
			stat[leave] = atLower
		}
		stat[ent] = inTree
		// Re-hang the tree: removing the leaving arc splits off the
		// subtree containing exactly one endpoint of the entering arc.
		// Reverse the parent chain from that endpoint up to the leaving
		// arc's child node, then attach the endpoint under the other side
		// through the entering arc.
		lchild := from[leave]
		if parc[lchild] != leave {
			lchild = to[leave]
		}
		// Which entering endpoint lives in the detached subtree?
		inSub := func(x int) bool {
			for x >= 0 {
				if x == lchild {
					return true
				}
				x = parent[x]
			}
			return false
		}
		eu, ev := from[ent], to[ent]
		sub, keep := eu, ev
		if !inSub(eu) {
			sub, keep = ev, eu
		}
		// Reverse the chain sub → ... → lchild.
		prevNode, prevArc := keep, ent
		x := sub
		for {
			nextNode, nextArc := parent[x], parc[x]
			parent[x], parc[x] = prevNode, prevArc
			if x == lchild {
				break
			}
			prevNode, prevArc = x, nextArc
			x = nextNode
		}
		sweep()
	}

	// Any residual artificial flow means the supplies cannot be routed.
	for a := nArcs; a < total; a++ {
		if flow[a] > 1e-7 {
			return Solution{Status: Infeasible, Pivots: pivots}
		}
	}
	out := Solution{Status: Optimal, Flow: flow[:nArcs:nArcs], Pivots: pivots}
	for a := 0; a < nArcs; a++ {
		out.Cost += cost[a] * flow[a]
	}
	return out
}
