package netflow

import (
	"math"
	"math/rand"
	"testing"

	"merlin/internal/lp"
)

func TestShortestPathByCost(t *testing.T) {
	// 0 → 3 via the cheap two-hop route, not the expensive direct arc.
	p := Problem{
		N: 4,
		Arcs: []Arc{
			{From: 0, To: 3, Cap: 1, Cost: 10},
			{From: 0, To: 1, Cap: 1, Cost: 1},
			{From: 1, To: 2, Cap: 1, Cost: 1},
			{From: 2, To: 3, Cap: 1, Cost: 1},
		},
		Supply: []float64{1, 0, 0, -1},
	}
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	want := []float64{0, 1, 1, 1}
	for i, f := range sol.Flow {
		if math.Abs(f-want[i]) > 1e-9 {
			t.Fatalf("flow[%d] = %v, want %v", i, f, want[i])
		}
	}
	if math.Abs(sol.Cost-3) > 1e-9 {
		t.Fatalf("cost = %v, want 3", sol.Cost)
	}
}

func TestCapacityForcesSplit(t *testing.T) {
	// Two units must leave node 0; the cheap arc carries one, the
	// expensive arc the other.
	p := Problem{
		N: 2,
		Arcs: []Arc{
			{From: 0, To: 1, Cap: 1, Cost: 1},
			{From: 0, To: 1, Cap: 5, Cost: 4},
		},
		Supply: []float64{2, -2},
	}
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Flow[0]-1) > 1e-9 || math.Abs(sol.Flow[1]-1) > 1e-9 {
		t.Fatalf("flow = %v, want [1 1]", sol.Flow)
	}
	if math.Abs(sol.Cost-5) > 1e-9 {
		t.Fatalf("cost = %v, want 5", sol.Cost)
	}
}

func TestInfeasibleDisconnected(t *testing.T) {
	p := Problem{
		N:      3,
		Arcs:   []Arc{{From: 0, To: 1, Cap: 1, Cost: 1}},
		Supply: []float64{1, 0, -1},
	}
	if sol := Solve(p); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleCapacityCut(t *testing.T) {
	p := Problem{
		N:      2,
		Arcs:   []Arc{{From: 0, To: 1, Cap: 1, Cost: 1}},
		Supply: []float64{2, -2},
	}
	if sol := Solve(p); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestTransportation(t *testing.T) {
	// Classic 2×2 transportation instance with a known optimum.
	p := Problem{
		N: 4, // suppliers 0,1; consumers 2,3
		Arcs: []Arc{
			{From: 0, To: 2, Cap: math.Inf(1), Cost: 2},
			{From: 0, To: 3, Cap: math.Inf(1), Cost: 6},
			{From: 1, To: 2, Cap: math.Inf(1), Cost: 5},
			{From: 1, To: 3, Cap: math.Inf(1), Cost: 3},
		},
		Supply: []float64{30, 20, -25, -25},
	}
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Optimal: 0→2 carries 25, 0→3 carries 5, 1→3 carries 20: cost 140.
	if math.Abs(sol.Cost-140) > 1e-9 {
		t.Fatalf("cost = %v, want 140", sol.Cost)
	}
}

func TestIntegralFlowsOnUnitData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng, true)
		sol := Solve(p)
		if sol.Status != Optimal {
			continue
		}
		for i, f := range sol.Flow {
			if math.Abs(f-math.Round(f)) > 1e-9 {
				t.Fatalf("trial %d: fractional flow %v on arc %d", trial, f, i)
			}
		}
	}
}

// TestAgreesWithLP cross-checks the network simplex against the general
// simplex on random instances: same constraint matrix, same objective.
func TestAgreesWithLP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	solved := 0
	for trial := 0; trial < 120; trial++ {
		p := randomProblem(rng, trial%2 == 0)
		got := Solve(p)

		m := lp.NewModel()
		vars := make([]int, len(p.Arcs))
		for i, a := range p.Arcs {
			vars[i] = m.AddVar(0, a.Cap, a.Cost, "f")
		}
		for v := 0; v < p.N; v++ {
			var terms []lp.Term
			for i, a := range p.Arcs {
				if a.From == v {
					terms = append(terms, lp.Term{Var: vars[i], Coeff: 1})
				}
				if a.To == v {
					terms = append(terms, lp.Term{Var: vars[i], Coeff: -1})
				}
			}
			if len(terms) == 0 && p.Supply[v] != 0 {
				terms = []lp.Term{}
			}
			m.AddConstraint(terms, lp.EQ, p.Supply[v], "node")
		}
		ref := m.Solve(lp.Params{})

		switch got.Status {
		case Optimal:
			if ref.Status != lp.Optimal {
				t.Fatalf("trial %d: netflow optimal, lp %v", trial, ref.Status)
			}
			if math.Abs(got.Cost-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
				t.Fatalf("trial %d: cost %v != lp objective %v", trial, got.Cost, ref.Objective)
			}
			solved++
		case Infeasible:
			if ref.Status != lp.Infeasible {
				t.Fatalf("trial %d: netflow infeasible, lp %v (obj %v)", trial, ref.Status, ref.Objective)
			}
		default:
			t.Fatalf("trial %d: unexpected status %v", trial, got.Status)
		}
	}
	if solved < 40 {
		t.Fatalf("only %d/120 trials solved — generator too hostile to be a meaningful cross-check", solved)
	}
}

// TestDeterministic re-solves one instance repeatedly and demands
// identical flows and pivot counts.
func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, false)
	first := Solve(p)
	for i := 0; i < 10; i++ {
		again := Solve(p)
		if again.Status != first.Status || again.Pivots != first.Pivots {
			t.Fatalf("run %d diverged: %v/%d vs %v/%d", i, again.Status, again.Pivots, first.Status, first.Pivots)
		}
		for j := range first.Flow {
			if again.Flow[j] != first.Flow[j] {
				t.Fatalf("run %d: flow[%d] = %v vs %v", i, j, again.Flow[j], first.Flow[j])
			}
		}
	}
}

// randomProblem builds a connected-ish random instance. unit constrains
// supplies and capacities to small integers so integrality is checkable.
func randomProblem(rng *rand.Rand, unit bool) Problem {
	n := 3 + rng.Intn(8)
	p := Problem{N: n, Supply: make([]float64, n)}
	// A random spine so most instances are feasible, plus chords.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		capac := float64(1 + rng.Intn(4))
		if !unit {
			capac = 1 + 10*rng.Float64()
		}
		p.Arcs = append(p.Arcs, Arc{From: u, To: v, Cap: capac, Cost: float64(rng.Intn(9))})
	}
	for extra := rng.Intn(2 * n); extra > 0; extra-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		capac := float64(1 + rng.Intn(4))
		if !unit {
			capac = 1 + 10*rng.Float64()
		}
		p.Arcs = append(p.Arcs, Arc{From: u, To: v, Cap: capac, Cost: float64(rng.Intn(9))})
	}
	// Balanced integer supplies.
	units := 1 + rng.Intn(3)
	for k := 0; k < units; k++ {
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d {
			continue
		}
		p.Supply[s]++
		p.Supply[d]--
	}
	return p
}
