// Package zoo generates the synthetic stand-in for the Internet Topology
// Zoo dataset used in Fig. 6. The real dataset (262 operator topologies in
// GraphML) is not available offline, so this package deterministically
// synthesizes 262 topologies whose switch-count distribution matches the
// statistics the paper reports — mean ≈ 40 switches, standard deviation
// ≈ 30, one 754-switch outlier — across the structural families operator
// networks exhibit (rings, stars, trees, meshes, Waxman random graphs).
// Fig. 6 plots compile time against switch count, which depends on graph
// size and diameter rather than the identity of each network, so the
// substitution preserves the experiment's shape.
package zoo

import (
	"fmt"
	"math"
	"math/rand"

	"merlin/internal/topo"
)

// Count is the number of topologies in the synthetic zoo, matching the
// dataset's 262.
const Count = 262

// Entry describes one zoo topology without materializing it.
type Entry struct {
	Index    int
	Name     string
	Family   string
	Switches int
}

// families rotates deterministically across indices.
var families = []string{"ring", "star", "tree", "mesh", "waxman"}

// size draws the switch count for index i from a lognormal-ish
// distribution calibrated to mean ≈ 40, sd ≈ 30, clamped to [4, 200],
// with index 0 pinned to the 754-switch outlier the paper elides from
// its figure.
func size(i int) int {
	if i == 0 {
		return 754
	}
	rng := rand.New(rand.NewSource(int64(7919*i + 17)))
	// Lognormal with mu, sigma chosen so E≈40, sd≈30:
	// sigma² = ln(1 + (30/40)²) ≈ 0.454, mu = ln(40) - sigma²/2.
	sigma := math.Sqrt(math.Log(1 + 0.75*0.75))
	mu := math.Log(40) - sigma*sigma/2
	n := int(math.Round(math.Exp(mu + sigma*rng.NormFloat64())))
	if n < 4 {
		n = 4
	}
	if n > 200 {
		n = 200
	}
	return n
}

// Entries lists all topologies' metadata. Switches is the materialized
// count (families that need structural rounding — complete trees, square
// meshes — may deviate from the drawn size).
func Entries() []Entry {
	out := make([]Entry, Count)
	for i := 0; i < Count; i++ {
		out[i] = Entry{
			Index:    i,
			Name:     fmt.Sprintf("zoo-%03d", i),
			Family:   families[i%len(families)],
			Switches: switchesFor(i),
		}
	}
	return out
}

// switchesFor computes the materialized switch count of topology i.
func switchesFor(i int) int {
	n := size(i)
	switch families[i%len(families)] {
	case "ring":
		return max(3, n)
	case "star":
		return max(1, n-1) + 1
	case "tree":
		depth := 0
		for (1<<(depth+1))-1 < n {
			depth++
		}
		return (1 << (depth + 1)) - 1
	default:
		return n
	}
}

// Generate materializes zoo topology i with hostsPerAttachment hosts
// attached to a deterministic subset of switches (every fourth switch, at
// least one), which keeps all-pairs compilation tractable while preserving
// graph size as the driver of compile cost.
func Generate(i, hostsPerAttachment int) *topo.Topology {
	if i < 0 || i >= Count {
		panic(fmt.Sprintf("zoo: index %d out of range", i))
	}
	if hostsPerAttachment < 1 {
		hostsPerAttachment = 1
	}
	n := size(i)
	family := families[i%len(families)]
	var t *topo.Topology
	switch family {
	case "ring":
		t = topo.Ring(max(3, n), 0, topo.Gbps)
	case "star":
		t = topo.Star(max(1, n-1), 0, topo.Gbps)
	case "tree":
		// Fanout 2 tree with ~n switches: depth = ceil(log2(n+1)) - 1.
		depth := 0
		for (1<<(depth+1))-1 < n {
			depth++
		}
		t = topo.BalancedTree(2, depth, 0, topo.Gbps)
	case "mesh":
		t = mesh(n)
	default: // waxman
		t = topo.Waxman(n, 0.4, 0.25, int64(i), topo.Gbps)
	}
	attachHosts(t, hostsPerAttachment)
	return t
}

// mesh builds a √n×√n grid.
func mesh(n int) *topo.Topology {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	t := topo.New()
	ids := make([][]topo.NodeID, side)
	count := 0
	for r := 0; r < side && count < n; r++ {
		ids[r] = make([]topo.NodeID, 0, side)
		for c := 0; c < side && count < n; c++ {
			sw := t.AddSwitch(fmt.Sprintf("s%d_%d", r, c))
			ids[r] = append(ids[r], sw)
			if c > 0 {
				t.AddLink(ids[r][c-1], sw, topo.Gbps)
			}
			if r > 0 && c < len(ids[r-1]) {
				t.AddLink(ids[r-1][c], sw, topo.Gbps)
			}
			count++
		}
	}
	return t
}

// attachHosts puts hosts on every fourth switch (and always the first).
func attachHosts(t *topo.Topology, perSwitch int) {
	sws := t.Switches()
	for idx, sw := range sws {
		if idx%4 != 0 {
			continue
		}
		for h := 0; h < perSwitch; h++ {
			host := t.AddHost(fmt.Sprintf("zh%d_%d", idx, h))
			t.AddLink(sw, host, topo.Gbps)
		}
	}
}

// Stats summarizes the synthetic distribution, for documentation and the
// substitution-fidelity test.
func Stats() (mean, sd float64, largest int) {
	var sum, sum2 float64
	n := 0
	for i := 1; i < Count; i++ { // exclude the pinned outlier, as the paper's figure does
		s := float64(size(i))
		sum += s
		sum2 += s * s
		n++
	}
	mean = sum / float64(n)
	sd = math.Sqrt(sum2/float64(n) - mean*mean)
	return mean, sd, size(0)
}
