package zoo

import (
	"testing"

	"merlin/internal/topo"
)

func TestCountAndDeterminism(t *testing.T) {
	es := Entries()
	if len(es) != Count || Count != 262 {
		t.Fatalf("entries = %d", len(es))
	}
	a := Generate(5, 1)
	b := Generate(5, 1)
	if a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		t.Fatal("generation not deterministic")
	}
}

func TestDistributionMatchesPaper(t *testing.T) {
	mean, sd, largest := Stats()
	if mean < 30 || mean > 50 {
		t.Errorf("mean = %.1f, want ~40", mean)
	}
	if sd < 20 || sd > 40 {
		t.Errorf("sd = %.1f, want ~30", sd)
	}
	if largest != 754 {
		t.Errorf("largest = %d, want the 754-switch outlier", largest)
	}
}

func TestAllTopologiesConnectedWithHosts(t *testing.T) {
	if testing.Short() {
		t.Skip("full zoo sweep")
	}
	for i := 0; i < Count; i += 7 { // sample across families and sizes
		tp := Generate(i, 1)
		if !tp.Connected() {
			t.Fatalf("zoo %d disconnected", i)
		}
		if len(tp.Hosts()) == 0 {
			t.Fatalf("zoo %d has no hosts", i)
		}
		if got, want := len(tp.Switches()), Entries()[i].Switches; got < want-1 || got > want+1 {
			t.Fatalf("zoo %d switches = %d, want ~%d", i, got, want)
		}
	}
}

func TestFamilies(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Entries()[:10] {
		seen[e.Family] = true
	}
	if len(seen) != 5 {
		t.Fatalf("families = %v", seen)
	}
}

func TestGenerateBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index accepted")
		}
	}()
	Generate(Count, 1)
}

func TestMeshShape(t *testing.T) {
	tp := Generate(3, 1) // index 3 is the mesh family (0-based rotation)
	if Entries()[3].Family != "mesh" {
		t.Skip("family rotation changed")
	}
	if !tp.Connected() {
		t.Fatal("mesh disconnected")
	}
	_ = topo.Gbps
}
