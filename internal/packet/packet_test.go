package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"merlin/internal/pred"
)

func TestMACRoundTrip(t *testing.T) {
	m, err := ParseMAC("00:1a:2B:3c:4D:5e")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "00:1a:2b:3c:4d:5e" {
		t.Fatalf("MAC = %s", m)
	}
	for _, bad := range []string{"", "00:00", "zz:00:00:00:00:00", "00-00-00-00-00-00"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", bad)
		}
	}
}

func TestIPRoundTrip(t *testing.T) {
	ip, err := ParseIP("192.168.1.200")
	if err != nil {
		t.Fatal(err)
	}
	if ip.String() != "192.168.1.200" {
		t.Fatalf("IP = %s", ip)
	}
	for _, bad := range []string{"", "1.2.3", "256.1.1.1", "a.b.c.d"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) succeeded", bad)
		}
	}
}

func TestTCPMarshalParse(t *testing.T) {
	p := TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 44123, 80, []byte("GET /"))
	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.EthSrc != p.EthSrc || q.EthDst != p.EthDst {
		t.Error("ethernet addresses changed")
	}
	if q.IPv4 == nil || q.IPv4.Src != p.IPv4.Src || q.IPv4.Dst != p.IPv4.Dst {
		t.Error("IP layer changed")
	}
	if q.TCP == nil || q.TCP.Src != 44123 || q.TCP.Dst != 80 {
		t.Error("TCP ports changed")
	}
	if !bytes.Equal(q.Payload, []byte("GET /")) {
		t.Errorf("payload = %q", q.Payload)
	}
	if q.VLAN != VLANNone {
		t.Error("phantom VLAN")
	}
}

func TestUDPMarshalParse(t *testing.T) {
	p := UDPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 5000, 53, []byte{1, 2, 3})
	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.UDP == nil || q.UDP.Dst != 53 {
		t.Fatal("UDP layer lost")
	}
	if !bytes.Equal(q.Payload, []byte{1, 2, 3}) {
		t.Errorf("payload = %v", q.Payload)
	}
}

func TestVLANTagging(t *testing.T) {
	p := TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 1, 2, nil)
	p.VLAN = 42
	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.VLAN != 42 {
		t.Fatalf("VLAN = %d, want 42", q.VLAN)
	}
	if q.TCP == nil {
		t.Fatal("TCP lost under VLAN")
	}
}

func TestChecksumValidation(t *testing.T) {
	p := TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 1, 2, nil)
	raw := p.Marshal()
	raw[14+8] ^= 0xff // corrupt TTL inside the IP header
	if _, err := Parse(raw); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		make([]byte, 5),
		append(make([]byte, 12), 0x81, 0x00), // VLAN type but no tag
	} {
		if _, err := Parse(raw); err == nil {
			t.Errorf("Parse(%d bytes) succeeded", len(raw))
		}
	}
}

func TestFieldsAndPredicateBridge(t *testing.T) {
	p := TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 999, 80, []byte("x"))
	web := pred.Conj(
		pred.Test{Field: "eth.src", Value: "00:00:00:00:00:01"},
		pred.Test{Field: "tcp.dst", Value: "80"},
	)
	if !p.Matches(web) {
		t.Error("packet should match web predicate")
	}
	ssh := pred.Test{Field: "tcp.dst", Value: "22"}
	if p.Matches(ssh) {
		t.Error("packet should not match ssh predicate")
	}
	f := p.Fields()
	if f["ip.proto"] != "6" || f["payload"] != "x" {
		t.Errorf("fields = %v", f)
	}
}

func TestClone(t *testing.T) {
	p := TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 1, 2, []byte("abc"))
	q := p.Clone()
	q.TCP.Dst = 99
	q.Payload[0] = 'z'
	if p.TCP.Dst != 2 || p.Payload[0] != 'a' {
		t.Fatal("Clone aliases storage")
	}
}

func TestNonIPPayload(t *testing.T) {
	p := &Packet{
		EthSrc:    MustMAC("00:00:00:00:00:01"),
		EthDst:    MustMAC("00:00:00:00:00:02"),
		EtherType: 0x88cc, // LLDP
		VLAN:      VLANNone,
		Payload:   []byte{9, 9},
	}
	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.EtherType != 0x88cc || q.IPv4 != nil {
		t.Fatalf("non-IP frame mangled: %+v", q)
	}
}

// Property: Marshal/Parse round-trips arbitrary TCP packets.
func TestMarshalParseRoundTripProperty(t *testing.T) {
	check := func(srcPort, dstPort uint16, a, b, c, d byte, payload []byte) bool {
		if len(payload) > 1200 {
			payload = payload[:1200]
		}
		p := &Packet{
			EthSrc:  MAC{0, 0, 0, 0, 0, a},
			EthDst:  MAC{0, 0, 0, 0, 0, b},
			VLAN:    VLANNone,
			IPv4:    &IPv4{Src: IP{10, 0, c, d}, Dst: IP{10, 1, d, c}, Proto: ProtoTCP},
			TCP:     &TCP{Src: srcPort, Dst: dstPort},
			Payload: payload,
		}
		q, err := Parse(p.Marshal())
		if err != nil {
			return false
		}
		return q.EthSrc == p.EthSrc && q.EthDst == p.EthDst &&
			q.IPv4.Src == p.IPv4.Src && q.IPv4.Dst == p.IPv4.Dst &&
			q.TCP.Src == srcPort && q.TCP.Dst == dstPort &&
			bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 999, 80, make([]byte, 512))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Marshal()
	}
}

func BenchmarkParse(b *testing.B) {
	raw := TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 999, 80, make([]byte, 512)).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}
