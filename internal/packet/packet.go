// Package packet implements a small layered packet model — Ethernet with
// optional 802.1Q VLAN tags, IPv4, TCP, and UDP — with wire-format parsing
// and serialization. It is the substrate the OpenFlow dataplane simulator
// and the end-host interpreter operate on, and it bridges concrete packets
// to Merlin predicates via Fields. The design follows the layered-decoder
// style of gopacket, scaled down to the protocols Merlin policies classify.
package packet

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"merlin/internal/pred"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// ParseMAC parses the colon-separated hex form.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("packet: bad MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("packet: bad MAC %q: %v", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// MustMAC is ParseMAC that panics, for tests and literals.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// String renders the canonical lower-case colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IP is an IPv4 address.
type IP [4]byte

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IP, error) {
	var ip IP
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("packet: bad IP %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("packet: bad IP %q: %v", s, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustIP is ParseIP that panics, for tests and literals.
func MustIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// EtherTypes and IP protocol numbers used by the stack.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeVLAN uint16 = 0x8100

	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// VLANNone marks the absence of an 802.1Q tag.
const VLANNone = -1

// Packet is a decoded packet. Layers beyond Ethernet are optional.
type Packet struct {
	EthSrc, EthDst MAC
	EtherType      uint16
	// VLAN is the 802.1Q VLAN ID, or VLANNone.
	VLAN int

	IPv4 *IPv4
	TCP  *TCP
	UDP  *UDP

	Payload []byte
}

// IPv4 is the network layer.
type IPv4 struct {
	Src, Dst IP
	Proto    uint8
	TOS      uint8
	TTL      uint8
}

// TCP is the TCP transport layer (ports only; Merlin classifies, it does
// not track connections).
type TCP struct {
	Src, Dst uint16
}

// UDP is the UDP transport layer.
type UDP struct {
	Src, Dst uint16
}

// Clone deep-copies the packet.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.IPv4 != nil {
		v := *p.IPv4
		q.IPv4 = &v
	}
	if p.TCP != nil {
		v := *p.TCP
		q.TCP = &v
	}
	if p.UDP != nil {
		v := *p.UDP
		q.UDP = &v
	}
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// Fields projects the packet onto Merlin predicate fields, the bridge
// between concrete packets and policy predicates.
func (p *Packet) Fields() map[pred.Field]string {
	f := map[pred.Field]string{
		"eth.src": p.EthSrc.String(),
		"eth.dst": p.EthDst.String(),
		"eth.typ": strconv.Itoa(int(p.EtherType)),
	}
	if p.VLAN != VLANNone {
		f["vlan.id"] = strconv.Itoa(p.VLAN)
	}
	if p.IPv4 != nil {
		f["ip.src"] = p.IPv4.Src.String()
		f["ip.dst"] = p.IPv4.Dst.String()
		f["ip.proto"] = strconv.Itoa(int(p.IPv4.Proto))
		f["ip.tos"] = strconv.Itoa(int(p.IPv4.TOS))
	}
	if p.TCP != nil {
		f["tcp.src"] = strconv.Itoa(int(p.TCP.Src))
		f["tcp.dst"] = strconv.Itoa(int(p.TCP.Dst))
	}
	if p.UDP != nil {
		f["udp.src"] = strconv.Itoa(int(p.UDP.Src))
		f["udp.dst"] = strconv.Itoa(int(p.UDP.Dst))
	}
	if len(p.Payload) > 0 {
		f["payload"] = string(p.Payload)
	}
	return f
}

// Matches evaluates a Merlin predicate against the packet.
func (p *Packet) Matches(pr pred.Pred) bool {
	return pred.Matches(pr, p.Fields())
}

// Marshal serializes the packet to wire format.
func (p *Packet) Marshal() []byte {
	var b []byte
	b = append(b, p.EthDst[:]...)
	b = append(b, p.EthSrc[:]...)
	if p.VLAN != VLANNone {
		b = binary.BigEndian.AppendUint16(b, EtherTypeVLAN)
		b = binary.BigEndian.AppendUint16(b, uint16(p.VLAN)&0x0fff)
	}
	etherType := p.EtherType
	if p.IPv4 != nil {
		etherType = EtherTypeIPv4
	}
	b = binary.BigEndian.AppendUint16(b, etherType)
	if p.IPv4 == nil {
		return append(b, p.Payload...)
	}
	// IPv4 header (20 bytes, no options).
	var transport []byte
	proto := p.IPv4.Proto
	switch {
	case p.TCP != nil:
		proto = ProtoTCP
		transport = make([]byte, 20)
		binary.BigEndian.PutUint16(transport[0:], p.TCP.Src)
		binary.BigEndian.PutUint16(transport[2:], p.TCP.Dst)
		transport[12] = 5 << 4 // data offset
	case p.UDP != nil:
		proto = ProtoUDP
		transport = make([]byte, 8)
		binary.BigEndian.PutUint16(transport[0:], p.UDP.Src)
		binary.BigEndian.PutUint16(transport[2:], p.UDP.Dst)
		binary.BigEndian.PutUint16(transport[4:], uint16(8+len(p.Payload)))
	}
	total := 20 + len(transport) + len(p.Payload)
	hdr := make([]byte, 20)
	hdr[0] = 0x45 // version 4, IHL 5
	hdr[1] = p.IPv4.TOS
	binary.BigEndian.PutUint16(hdr[2:], uint16(total))
	ttl := p.IPv4.TTL
	if ttl == 0 {
		ttl = 64
	}
	hdr[8] = ttl
	hdr[9] = proto
	copy(hdr[12:16], p.IPv4.Src[:])
	copy(hdr[16:20], p.IPv4.Dst[:])
	binary.BigEndian.PutUint16(hdr[10:], checksum(hdr))
	b = append(b, hdr...)
	b = append(b, transport...)
	return append(b, p.Payload...)
}

// checksum is the ones-complement sum used by the IPv4 header.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Parse decodes a wire-format packet produced by Marshal (or any
// conformant Ethernet/IPv4/TCP/UDP frame without IP options).
func Parse(b []byte) (*Packet, error) {
	if len(b) < 14 {
		return nil, fmt.Errorf("packet: truncated Ethernet header (%d bytes)", len(b))
	}
	p := &Packet{VLAN: VLANNone}
	copy(p.EthDst[:], b[0:6])
	copy(p.EthSrc[:], b[6:12])
	etherType := binary.BigEndian.Uint16(b[12:14])
	rest := b[14:]
	if etherType == EtherTypeVLAN {
		if len(rest) < 4 {
			return nil, fmt.Errorf("packet: truncated VLAN tag")
		}
		p.VLAN = int(binary.BigEndian.Uint16(rest[0:2]) & 0x0fff)
		etherType = binary.BigEndian.Uint16(rest[2:4])
		rest = rest[4:]
	}
	p.EtherType = etherType
	if etherType != EtherTypeIPv4 {
		p.Payload = append([]byte(nil), rest...)
		return p, nil
	}
	if len(rest) < 20 {
		return nil, fmt.Errorf("packet: truncated IPv4 header")
	}
	if rest[0]>>4 != 4 {
		return nil, fmt.Errorf("packet: not IPv4 (version %d)", rest[0]>>4)
	}
	ihl := int(rest[0]&0x0f) * 4
	if ihl < 20 || len(rest) < ihl {
		return nil, fmt.Errorf("packet: bad IPv4 IHL %d", ihl)
	}
	if checksum(rest[:ihl]) != 0 {
		return nil, fmt.Errorf("packet: IPv4 header checksum mismatch")
	}
	ip := &IPv4{Proto: rest[9], TOS: rest[1], TTL: rest[8]}
	copy(ip.Src[:], rest[12:16])
	copy(ip.Dst[:], rest[16:20])
	p.IPv4 = ip
	total := int(binary.BigEndian.Uint16(rest[2:4]))
	if total > len(rest) {
		return nil, fmt.Errorf("packet: IPv4 total length %d exceeds frame", total)
	}
	body := rest[ihl:total]
	switch ip.Proto {
	case ProtoTCP:
		if len(body) < 20 {
			return nil, fmt.Errorf("packet: truncated TCP header")
		}
		off := int(body[12]>>4) * 4
		if off < 20 || len(body) < off {
			return nil, fmt.Errorf("packet: bad TCP offset %d", off)
		}
		p.TCP = &TCP{
			Src: binary.BigEndian.Uint16(body[0:2]),
			Dst: binary.BigEndian.Uint16(body[2:4]),
		}
		p.Payload = append([]byte(nil), body[off:]...)
	case ProtoUDP:
		if len(body) < 8 {
			return nil, fmt.Errorf("packet: truncated UDP header")
		}
		p.UDP = &UDP{
			Src: binary.BigEndian.Uint16(body[0:2]),
			Dst: binary.BigEndian.Uint16(body[2:4]),
		}
		p.Payload = append([]byte(nil), body[8:]...)
	default:
		p.Payload = append([]byte(nil), body...)
	}
	return p, nil
}

// TCPPacket is a convenience constructor for the common test shape.
func TCPPacket(ethSrc, ethDst string, ipSrc, ipDst string, srcPort, dstPort uint16, payload []byte) *Packet {
	return &Packet{
		EthSrc:  MustMAC(ethSrc),
		EthDst:  MustMAC(ethDst),
		VLAN:    VLANNone,
		IPv4:    &IPv4{Src: MustIP(ipSrc), Dst: MustIP(ipDst), Proto: ProtoTCP},
		TCP:     &TCP{Src: srcPort, Dst: dstPort},
		Payload: append([]byte(nil), payload...),
	}
}

// UDPPacket is a convenience constructor for UDP traffic.
func UDPPacket(ethSrc, ethDst string, ipSrc, ipDst string, srcPort, dstPort uint16, payload []byte) *Packet {
	return &Packet{
		EthSrc:  MustMAC(ethSrc),
		EthDst:  MustMAC(ethDst),
		VLAN:    VLANNone,
		IPv4:    &IPv4{Src: MustIP(ipSrc), Dst: MustIP(ipDst), Proto: ProtoUDP},
		UDP:     &UDP{Src: srcPort, Dst: dstPort},
		Payload: append([]byte(nil), payload...),
	}
}
