package merlin

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"merlin/internal/tcam"
	"merlin/internal/topo"
)

// tcamTargets is the default backend set plus the bundled tcam target.
func tcamTargets() []string { return append(DefaultTargets(), tcam.Name) }

// twoPathHostPred renders the h1→h2 classification predicate source for
// the TwoPath topology.
func twoPathHostPred(t *testing.T, tp *Topology) string {
	t.Helper()
	ids := tp.Identities()
	a, _ := ids.Of(tp.MustLookup("h1"))
	b, _ := ids.Of(tp.MustLookup("h2"))
	return fmt.Sprintf("eth.src = %s and eth.dst = %s", a.MAC, b.MAC)
}

// TestCompileTargetsIncludeTcam proves the v2 seam end-to-end: adding
// "tcam" to Options.Targets emits expanded ternary CLI lines from the
// same lowered IR while leaving the default aggregate output
// byte-identical to a default-target compile.
func TestCompileTargetsIncludeTcam(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}

	def, err := Compile(pol, tp, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(pol, tp, place, Options{Targets: tcamTargets()})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderResult(res), renderResult(def); got != want {
		t.Fatalf("adding the tcam target perturbed the default output\n%s", firstDiff(want, got))
	}
	art, ok := res.Outputs[tcam.Name].(*tcam.Artifact)
	if !ok || art.Count() == 0 {
		t.Fatalf("tcam artifact missing or empty: %T", res.Outputs[tcam.Name])
	}
	for _, e := range art.Lines {
		if tp.Node(e.Device).Kind != topo.Switch {
			t.Fatalf("tcam line on non-switch node %d: %s", e.Device, e.Text)
		}
	}
}

// TestCapsOnlyPatchSharesTcamArtifact covers the incremental fast path
// through the v2 seam: a formula-only cap change re-emits just the tc
// and host backends; the tcam artifact is shared by pointer with the
// previous result, so its diff is empty without re-expanding a single
// ternary row.
func TestCapsOnlyPatchSharesTcamArtifact(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	c := NewCompiler(tp, place, Options{Targets: tcamTargets()})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Stats()
	diff, err := c.Update(Delta{Formula: capFormula(40*MBps, 10*MBps)})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.PatchedCodegens != base.PatchedCodegens+1 {
		t.Fatalf("cap change did not take the patch path: %+v", st)
	}
	td, ok := diff.Backends[tcam.Name]
	if !ok {
		t.Fatal("diff carries no tcam section")
	}
	if !td.Empty() {
		t.Fatalf("caps-only change produced a tcam delta: %+v", td)
	}
	if c.Result().Outputs[tcam.Name] != first.Outputs[tcam.Name] {
		t.Fatal("tcam artifact was re-emitted on the caps-only patch path")
	}
}

// TestApplyTopoRoutesTcamDiff covers reroute routing through the v2
// seam: a link failure moving a guaranteed path must surface as a tcam
// CLI delta in Diff.Backends alongside the OpenFlow one.
func TestApplyTopoRoutesTcamDiff(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	c := NewCompiler(tp, nil, Options{NoDefault: true, Targets: tcamTargets()})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	a, b := switchHop(t, tp, first.Paths["t0g0"])
	diff, err := c.ApplyTopo(LinkFailure(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.InstallRules) == 0 || len(diff.RemoveRules) == 0 {
		t.Fatal("reroute produced no OpenFlow delta")
	}
	td, ok := diff.Backends[tcam.Name]
	if !ok || td.Empty() {
		t.Fatalf("reroute produced no tcam delta: %+v", td)
	}
}

// TestTableBudgetReject: when the overflowing traffic is best-effort —
// there is no guaranteed placement the MIP could move — the compiler
// must reject with the typed overflow error naming the device.
func TestTableBudgetReject(t *testing.T) {
	tp := TwoPath(400*MBps, 100*MBps)
	src := "p : (" + twoPathHostPred(t, tp) + ") -> .*"
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(pol, tp, nil, Options{
		NoDefault:    true,
		Targets:      tcamTargets(),
		TableBudgets: map[string]int{"r1": 0, "l1": 0, "l2": 0},
	})
	var of *TableOverflowError
	if !errors.As(err, &of) {
		t.Fatalf("expected *TableOverflowError, got %v", err)
	}
	if len(of.Overflows) == 0 {
		t.Fatal("overflow error names no devices")
	}
	for _, o := range of.Overflows {
		if o.Budget != 0 || o.Entries <= 0 || o.Name == "" {
			t.Fatalf("bad overflow record: %+v", o)
		}
	}
}

// TestTableBudgetRejectInfeasible: a guarantee whose every possible path
// crosses a zero-budget switch cannot be re-placed; the original typed
// error must surface.
func TestTableBudgetRejectInfeasible(t *testing.T) {
	tp := TwoPath(400*MBps, 100*MBps)
	src := "g : (" + twoPathHostPred(t, tp) + ") -> .* at min(50MB/s)"
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{
		NoDefault:    true,
		Targets:      tcamTargets(),
		TableBudgets: map[string]int{"r1": 0, "l1": 0, "l2": 0},
	})
	_, err = c.Compile(pol)
	var of *TableOverflowError
	if !errors.As(err, &of) {
		t.Fatalf("expected *TableOverflowError, got %v", err)
	}
	if st := c.Stats(); st.OverflowReplacements != 0 {
		t.Fatalf("infeasible re-place counted as a replacement: %+v", st)
	}
}

// TestTableBudgetReplacement: a guarantee initially placed on the
// narrow path overflows the zero-budget switch there; the compiler must
// re-place it through the MIP with the budget as a placement constraint
// and succeed via the wide path.
func TestTableBudgetReplacement(t *testing.T) {
	tp := TwoPath(400*MBps, 100*MBps)
	src := "g : (" + twoPathHostPred(t, tp) + ") -> .* at min(50MB/s)"
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: weighted-shortest-path picks the 2-hop path through r1.
	base, err := Compile(pol, tp, nil, Options{NoDefault: true, Targets: tcamTargets()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(base.Paths["g"], " "), "r1") {
		t.Fatalf("baseline path avoids r1 already: %v", base.Paths["g"])
	}

	c := NewCompiler(tp, nil, Options{
		NoDefault:    true,
		Targets:      tcamTargets(),
		TableBudgets: map[string]int{"r1": 0},
	})
	res, err := c.Compile(pol)
	if err != nil {
		t.Fatalf("budget-constrained compile failed: %v", err)
	}
	path := strings.Join(res.Paths["g"], " ")
	if strings.Contains(path, "r1") {
		t.Fatalf("re-placed path still crosses the zero-budget switch: %v", res.Paths["g"])
	}
	if st := c.Stats(); st.OverflowReplacements != 1 {
		t.Fatalf("OverflowReplacements = %d, want 1 (%+v)", st.OverflowReplacements, st)
	}
	// The tcam artifact must hold no entries on r1.
	art := c.Result().Outputs[tcam.Name].(*tcam.Artifact)
	r1 := tp.MustLookup("r1")
	if n := art.PerDevice[r1]; n != 0 {
		t.Fatalf("%d tcam entries on the zero-budget switch", n)
	}
}

// TestTableBudgetsEnforcedWithoutTernaryTarget: Options.TableBudgets is
// a compiler-level constraint — it must hold even when no v2 backend is
// targeted (the expansion runs for the check alone).
func TestTableBudgetsEnforcedWithoutTernaryTarget(t *testing.T) {
	tp := TwoPath(400*MBps, 100*MBps)
	src := "p : (" + twoPathHostPred(t, tp) + ") -> .*"
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(pol, tp, nil, Options{
		NoDefault:    true,
		TableBudgets: map[string]int{"r1": 0, "l1": 0, "l2": 0},
	})
	var of *TableOverflowError
	if !errors.As(err, &of) {
		t.Fatalf("expected *TableOverflowError without a ternary target, got %v", err)
	}
}

// renderTcam dumps a tcam artifact deterministically, device names
// resolved, for the golden lock.
func renderTcam(tp *Topology, art *tcam.Artifact) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== tcam (%d)\n", art.Count())
	for _, e := range art.Lines {
		fmt.Fprintf(&sb, "dev=%s %s\n", tp.Node(e.Device).Name, e.Text)
	}
	return sb.String()
}

// TestGoldenTcam locks the tcam backend's rendered CLI output for the
// example workloads byte-for-byte, exactly as the built-in backends are
// locked by TestGoldenBackendParity. Regenerate with -update.
func TestGoldenTcam(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		if sc.name == "delegation" {
			// The delegation scenario's negated drop predicates expand the
			// same way quickstart's do; the three locked workloads cover
			// classification, guarantees, and middlebox waypoints.
			continue
		}
		t.Run(sc.name, func(t *testing.T) {
			pol, tp, place, opts := sc.build(t)
			opts.Targets = []string{tcam.Name}
			res, err := Compile(pol, tp, place, opts)
			if err != nil {
				t.Fatal(err)
			}
			art, ok := res.Outputs[tcam.Name].(*tcam.Artifact)
			if !ok {
				t.Fatalf("tcam artifact missing: %T", res.Outputs[tcam.Name])
			}
			got := renderTcam(tp, art)
			path := filepath.Join("testdata", "golden", "tcam-"+sc.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s: tcam output diverged from golden\n%s", sc.name, firstDiff(string(want), got))
			}
		})
	}
}
