package merlin

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// sameResults asserts two compiled results are byte-identical across
// every section — the snapshot/restore and journal-replay invariant.
func sameResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Output, want.Output) {
		t.Fatalf("%s: outputs differ", label)
	}
	if !reflect.DeepEqual(got.Paths, want.Paths) {
		t.Fatalf("%s: paths differ: %v vs %v", label, got.Paths, want.Paths)
	}
	if !reflect.DeepEqual(got.Placements, want.Placements) {
		t.Fatalf("%s: placements differ", label)
	}
	if !reflect.DeepEqual(got.Allocations, want.Allocations) {
		t.Fatalf("%s: allocations differ", label)
	}
	if !reflect.DeepEqual(got.Programs, want.Programs) {
		t.Fatalf("%s: end-host programs differ", label)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatalf("%s: backend artifacts differ", label)
	}
}

// TestWatchHubRebindDetachesOldHub is the WatchHub lifecycle regression:
// rebinding a compiler to a second hub must detach the first — before
// the fix, hub A's commits kept recompiling this compiler forever.
func TestWatchHubRebindDetachesOldHub(t *testing.T) {
	tp := Ring(8, 1, 100*MBps)
	pol := hubRingPolicy(t, tp, "at max(40MB/s)")
	hubA, err := NewHub(pol, HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hubB, err := NewHub(pol, HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	if _, err := c.Compile(hubA.Policy()); err != nil {
		t.Fatal(err)
	}

	setup := func(h *Hub) *Session {
		t.Helper()
		if err := h.AddShard("left", 100*MBps); err != nil {
			t.Fatal(err)
		}
		s, err := h.Register("tenant-a", "left", []string{"a0"},
			AIMDState{Alloc: 10 * MBps, Increase: 5 * MBps, Decrease: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sa, sb := setup(hubA), setup(hubB)

	var diffsA, diffsB []*Diff
	c.WatchHub(hubA, func(d *Diff) { diffsA = append(diffsA, d) })
	c.WatchHub(hubB, func(d *Diff) { diffsB = append(diffsB, d) })

	// Hub A commits after the rebind: the commit must not reach this
	// compiler — no recompile, no diff, no veto coupling.
	before := c.Result()
	sa.OfferDemand(60 * MBps)
	rep, err := hubA.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Committed {
		t.Fatal("hub A tick did not commit")
	}
	if len(diffsA) != 0 {
		t.Fatal("detached hub A's commit reached the old onDiff callback")
	}
	if c.Result() != before {
		t.Fatal("detached hub A's commit recompiled the compiler")
	}

	// Hub B is the live binding: its commit recompiles and lands a diff,
	// and Stats mirrors its counters (one session, one tick), not A's.
	sb.OfferDemand(60 * MBps)
	rep, err = hubB.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Committed {
		t.Fatal("hub B tick did not commit")
	}
	if len(diffsB) != 1 {
		t.Fatalf("live hub B's commit produced %d diffs, want 1", len(diffsB))
	}
	sameCompiled(t, "rebind", c.Result(), hubB.Policy(), tp, nil, Options{NoDefault: true})
	if st := c.Stats(); st.TicksBatched != 1 {
		t.Fatalf("Stats mirrors TicksBatched=%d, want hub B's 1", st.TicksBatched)
	}

	// UnwatchHub drops the binding entirely: hub B's next commit no
	// longer reaches the compiler and Stats stops mirroring.
	c.UnwatchHub()
	before = c.Result()
	sb.OfferDemand(90 * MBps)
	if _, err := hubB.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(diffsB) != 1 || c.Result() != before {
		t.Fatal("UnwatchHub did not detach hub B")
	}
	if st := c.Stats(); st.TenantsActive != 0 || st.TicksBatched != 0 {
		t.Fatalf("Stats still mirrors an unbound hub: %+v", st)
	}
}

// TestWatchRebindDetachesOldNegotiator is the same lifecycle regression
// for the negotiator-tree binding (Compiler.Watch).
func TestWatchRebindDetachesOldNegotiator(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	c := NewCompiler(tp, place, Options{})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}

	rootA := NewNegotiator("a", pol)
	rootB := NewNegotiator("b", pol)
	var diffsA, diffsB []*Diff
	c.Watch(rootA, func(d *Diff) { diffsA = append(diffsA, d) })
	c.Watch(rootB, func(d *Diff) { diffsB = append(diffsB, d) })

	// The detached negotiator's reallocation must not recompile.
	before := c.Result()
	if _, err := rootA.Reallocate(capFormula(40*MBps, 10*MBps)); err != nil {
		t.Fatal(err)
	}
	if len(diffsA) != 0 || c.Result() != before {
		t.Fatal("detached negotiator A's commit still reached the compiler")
	}

	// The live binding commits through.
	if _, err := rootB.Reallocate(capFormula(30*MBps, 10*MBps)); err != nil {
		t.Fatal(err)
	}
	if len(diffsB) != 1 {
		t.Fatalf("live negotiator B produced %d diffs, want 1", len(diffsB))
	}
	sameCompiled(t, "neg-rebind", c.Result(),
		&Policy{Statements: pol.Statements, Formula: capFormula(30*MBps, 10*MBps)},
		tp, place, Options{})

	// Unwatch drops the binding.
	c.Unwatch()
	before = c.Result()
	if _, err := rootB.Reallocate(capFormula(20*MBps, 10*MBps)); err != nil {
		t.Fatal(err)
	}
	if len(diffsB) != 1 || c.Result() != before {
		t.Fatal("Unwatch did not detach negotiator B")
	}
}

// TestSnapshotRestoreByteIdentical drives a compiler through policy and
// topology churn, snapshots it, restores onto a pristine topology, and
// asserts the restored compiler's output — and its own snapshot — are
// byte-identical to the live one's.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	opts := Options{NoDefault: true}
	c := NewCompiler(tp, nil, opts)
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: a renegotiated rate, a link failure, a capacity change.
	if _, err := c.Update(Delta{Formula: minFormula(k, 2, 8*Mbps)}); err != nil {
		t.Fatal(err)
	}
	a, b := switchHop(t, tp, first.Paths["t0g0"])
	if _, err := c.ApplyTopo(LinkFailure(a, b)); err != nil {
		t.Fatal(err)
	}
	ca, cb := switchHop(t, tp, c.Result().Paths["t1g0"])
	if _, err := c.ApplyTopo(CapacityChange(ca, cb, 900*Mbps)); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := ParseSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}

	restored, res, err := RestoreCompiler(FatTree(k, Gbps), snap2, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "restore", res, c.Result())

	// The restored compiler is warm and live: the same follow-up delta
	// lands on both with identical results, and re-snapshotting yields
	// the same canonical bytes.
	if _, err := c.Update(Delta{Formula: minFormula(k, 2, 6*Mbps)}); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Update(Delta{Formula: minFormula(k, 2, 6*Mbps)}); err != nil {
		t.Fatal(err)
	}
	sameResults(t, "restore+delta", restored.Result(), c.Result())

	reSnap, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	liveSnap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	reBytes, _ := reSnap.Marshal()
	liveBytes, _ := liveSnap.Marshal()
	if string(reBytes) != string(liveBytes) {
		t.Fatalf("restored snapshot differs from live snapshot:\n%s\nvs\n%s", reBytes, liveBytes)
	}

	// Restoring onto a structurally different topology fails loudly.
	if _, _, err := RestoreCompiler(FatTree(k+2, Gbps), snap2, opts); err == nil {
		t.Fatal("restore onto a mismatched topology succeeded")
	}
}

// TestSnapshotBeforeCompile: there is nothing to snapshot before the
// first successful Compile.
func TestSnapshotBeforeCompile(t *testing.T) {
	c := NewCompiler(Ring(4, 1, Gbps), nil, Options{NoDefault: true})
	if _, err := c.Snapshot(); err == nil {
		t.Fatal("Snapshot before first Compile succeeded")
	}
}

// TestWireDeltaDecode covers the HTTP/journal delta codec: adds in
// concrete syntax (with and without "at" rate sugar), removes with a
// replacement formula, and the identity fast path for formula-free adds.
func TestWireDeltaDecode(t *testing.T) {
	tp := Ring(8, 1, 100*MBps)
	pol := tenantRingPolicy(t, tp, "10MB/s")
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	arc := func(lo, hi int) string {
		var names []string
		for i := lo; i < hi; i++ {
			names = append(names, fmt.Sprintf("s%d", i), fmt.Sprintf("h%d_0", i))
		}
		return "(" + strings.Join(names, "|") + ")*"
	}
	mac := func(host string) string {
		id, _ := tp.Identities().Of(tp.MustLookup(host))
		return id.MAC
	}

	// An "at" clause on an added statement conjoins into the formula,
	// so the decoded delta must carry the new formula even though the
	// wire form's Formula field is empty.
	addC0 := fmt.Sprintf("c0 : (eth.src = %s and eth.dst = %s) -> %s at min(5MB/s)",
		mac("h1_0"), mac("h2_0"), arc(0, 4))
	d, err := c.DecodeDelta(WireDelta{Add: []string{addC0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Add) != 1 || d.Add[0].ID != "c0" {
		t.Fatalf("decoded adds = %v, want [c0]", d.Add)
	}
	if d.Formula == nil {
		t.Fatal("at-clause add decoded without a formula change")
	}
	if _, err := c.Update(d); err != nil {
		t.Fatal(err)
	}
	wantSrc := fmt.Sprintf(`[ a0 : (eth.src = %s and eth.dst = %s) -> %s at min(20MB/s)
	  b0 : (eth.src = %s and eth.dst = %s) -> %s at min(10MB/s)
	  %s ]`,
		mac("h0_0"), mac("h3_0"), arc(0, 4),
		mac("h4_0"), mac("h7_0"), arc(4, 8), addC0)
	wantPol, err := ParsePolicy(wantSrc, tp)
	if err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "wire-add", c.Result(), wantPol, tp, nil, Options{NoDefault: true})

	// Remove + replacement formula (the formula must stop referencing
	// the removed statement; Validate enforces it either way).
	d, err = c.DecodeDelta(WireDelta{
		Remove:  []string{"c0"},
		Formula: "min(a0, 20MB/s) and min(b0, 10MB/s)",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Add) != 0 || len(d.Remove) != 1 || d.Formula == nil {
		t.Fatalf("decoded remove delta = %+v", d)
	}
	if _, err := c.Update(d); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "wire-remove", c.Result(), pol, tp, nil, Options{NoDefault: true})

	// A formula-only wire delta decodes with nil Add/Remove, preserving
	// Update's statement-identity fast path.
	d, err = c.DecodeDelta(WireDelta{Formula: "min(a0, 20MB/s) and min(b0, 5MB/s)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Add) != 0 || len(d.Remove) != 0 || d.Formula == nil {
		t.Fatalf("formula-only delta decoded as %+v", d)
	}
	base := c.Stats()
	if _, err := c.Update(d); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.StatementBuilds != base.StatementBuilds {
		t.Fatal("formula-only wire delta rebuilt statement artifacts")
	}

	// Malformed and colliding adds are rejected at decode time.
	if _, err := c.DecodeDelta(WireDelta{Add: []string{"not a statement"}}); err == nil {
		t.Fatal("malformed add decoded")
	}
	dupA0 := fmt.Sprintf("a0 : (eth.src = %s and eth.dst = %s) -> %s",
		mac("h1_0"), mac("h2_0"), arc(0, 4))
	if _, err := c.DecodeDelta(WireDelta{Add: []string{dupA0}}); err == nil {
		t.Fatal("add colliding with a kept statement decoded")
	}
}

// TestApplyJournalRecordReplay replays a genesis-policy record, a wire
// delta, and a topology batch into a fresh compiler and asserts the
// result is byte-identical to a compiler driven through the live calls.
func TestApplyJournalRecordReplay(t *testing.T) {
	const k = 4
	opts := Options{NoDefault: true}

	// Live compiler: compile, renegotiate, fail a link.
	liveTopo := FatTree(k, Gbps)
	pol := podPolicy(t, liveTopo, k, 2)
	live := NewCompiler(liveTopo, nil, opts)
	first, err := live.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	newFormula := minFormula(k, 2, 8*Mbps)
	if _, err := live.Update(Delta{Formula: newFormula}); err != nil {
		t.Fatal(err)
	}
	a, b := switchHop(t, liveTopo, first.Paths["t0g0"])
	applied := live.ApplyTopoBatch([]TopoEvent{LinkFailure(a, b)}, nil, nil)
	if len(applied) != 1 {
		t.Fatalf("ApplyTopoBatch applied %d events, want 1", len(applied))
	}

	// The journal merlind would have written for that history.
	deltaJSON, err := json.Marshal(WireDelta{Formula: newFormula.String()})
	if err != nil {
		t.Fatal(err)
	}
	topoJSON, err := json.Marshal(WireTopoEvents(applied))
	if err != nil {
		t.Fatal(err)
	}
	records := []struct {
		kind byte
		data []byte
	}{
		{RecPolicy, []byte(pol.String())},
		{RecDelta, deltaJSON},
		{RecTopo, topoJSON},
	}

	replayed := NewCompiler(FatTree(k, Gbps), nil, opts)
	for i, r := range records {
		if err := ApplyJournalRecord(replayed, r.kind, r.data); err != nil {
			t.Fatalf("replay record %d: %v", i, err)
		}
	}
	sameResults(t, "journal-replay", replayed.Result(), live.Result())

	// Unknown kinds and mismatched topologies fail loudly.
	if err := ApplyJournalRecord(replayed, 99, nil); err == nil {
		t.Fatal("unknown record kind replayed")
	}
	badTopo, _ := json.Marshal([]WireTopoEvent{{Kind: "link-down", A: "no-such", B: "nodes"}})
	if err := ApplyJournalRecord(replayed, RecTopo, badTopo); err == nil {
		t.Fatal("topology record naming unknown nodes replayed")
	}
}

// TestApplyTopoBatchReportsApplied pins the durability hook: the return
// value lists exactly the events that mutated the topology.
func TestApplyTopoBatchReportsApplied(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	a, b := switchHop(t, tp, first.Paths["t0g0"])

	// Full success: the whole batch.
	batch := []TopoEvent{LinkFailure(a, b), LinkRecovery(a, b)}
	if applied := c.ApplyTopoBatch(batch, nil, nil); !reflect.DeepEqual(applied, batch) {
		t.Fatalf("clean batch applied %v, want %v", applied, batch)
	}

	// Mixed batch: only the valid event is applied (and reported).
	var errs []error
	mixed := []TopoEvent{LinkFailure("no-such-node", a), LinkFailure(a, b)}
	applied := c.ApplyTopoBatch(mixed, nil, func(err error) { errs = append(errs, err) })
	if len(applied) != 1 || applied[0] != mixed[1] {
		t.Fatalf("mixed batch applied %v, want only the valid failure", applied)
	}
	if len(errs) != 1 {
		t.Fatalf("mixed batch reported %d errors, want 1", len(errs))
	}

	// Single malformed event: nothing applied.
	if applied := c.ApplyTopoBatch([]TopoEvent{LinkFailure("nope", a)}, nil, nil); applied != nil {
		t.Fatalf("malformed single event applied %v, want nil", applied)
	}

	// Post-apply recompile failure: the events stuck, so the batch is
	// still reported applied — journaling it is what makes a restart
	// reproduce the live compiler's degraded-topology state. Starving
	// t0g0's access link (its only way out of the host) below the 10Mbps
	// guarantee has no reroute, so the recompile must fail.
	infeasible := []TopoEvent{CapacityChange("edge0_0", "h0_0_0", Mbps)}
	errs = nil
	applied = c.ApplyTopoBatch(infeasible, nil, func(err error) { errs = append(errs, err) })
	if len(errs) != 1 {
		t.Fatalf("infeasible capacity drop reported %d errors, want 1", len(errs))
	}
	if !reflect.DeepEqual(applied, infeasible) {
		t.Fatalf("stuck-but-failed batch applied %v, want %v (events are facts)", applied, infeasible)
	}
	if l, ok := tp.FindLink(tp.MustLookup("edge0_0"), tp.MustLookup("h0_0_0")); ok && tp.Link(l.ID).Capacity != Mbps {
		t.Fatal("infeasible capacity change rolled back")
	}
}

// TestStatsDuringTopoStormRace hammers the daemon's read endpoints —
// Stats, Result, NegotiationShards, Snapshot — while a WatchTopo storm
// of capacity events recompiles underneath, with a hub bound so the
// Stats mirror path is exercised too. Run under -race, this pins the
// absence of unlocked reads on the /stats and /result paths.
func TestStatsDuringTopoStormRace(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub(pol, HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.WatchHub(hub, nil)
	a, b := switchHop(t, tp, first.Paths["t0g0"])

	events := make(chan TopoEvent)
	done := c.WatchTopo(events, nil, func(err error) { t.Errorf("storm: %v", err) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Stats()
				if st.Compiles == 0 {
					t.Error("Stats lost the initial compile")
					return
				}
				if res := c.Result(); res == nil || len(res.Paths) == 0 {
					t.Error("Result went nil mid-storm")
					return
				}
				c.NegotiationShards()
				if _, err := c.Snapshot(); err != nil {
					t.Errorf("Snapshot mid-storm: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		capBps := float64(900+i%4) * Mbps
		events <- CapacityChange(a, b, capBps)
	}
	close(events)
	<-done
	close(stop)
	wg.Wait()
}
