package merlin

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"merlin/internal/pred"
	"merlin/internal/topo"
)

// -update regenerates the golden files from the current compiler. The
// committed files were produced by the pre-backend-registry Compile, so a
// passing run proves the registry path is byte-identical to the original
// monolithic code generator.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from the current compiler output")

// goldenScenario is one locked compilation: the quickstart, datacenter,
// campus, and delegation example workloads, reduced to deterministic
// inputs.
type goldenScenario struct {
	name  string
	build func(t *testing.T) (*Policy, *Topology, Placement, Options)
}

func goldenScenarios() []goldenScenario {
	return []goldenScenario{
		{
			// The §2 running example on the Fig. 2 topology (examples/quickstart).
			name: "quickstart",
			build: func(t *testing.T) (*Policy, *Topology, Placement, Options) {
				tp := Example(Gbps)
				pol := paperPolicy(t, tp)
				place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
				return pol, tp, place, Options{}
			},
		},
		{
			// The §6.2 Hadoop shuffle guarantees on a k=4 fat tree
			// (examples/datacenter): 12 guaranteed classes, greedy allocator.
			name: "datacenter",
			build: func(t *testing.T) (*Policy, *Topology, Placement, Options) {
				tp := FatTree(4, Gbps)
				macs := tp.Identities().MACs()[:4]
				var sb strings.Builder
				sb.WriteString("[\n")
				n := 0
				for i, s := range macs {
					for j, d := range macs {
						if i == j {
							continue
						}
						fmt.Fprintf(&sb, " h%d : (eth.src = %s and eth.dst = %s) -> .* at min(150Mbps) ;\n", n, s, d)
						n++
					}
				}
				sb.WriteString("]")
				pol, err := ParsePolicy(sb.String(), tp)
				if err != nil {
					t.Fatal(err)
				}
				return pol, tp, nil, Options{Greedy: true}
			},
		},
		{
			// A Fig. 4-style mixed policy on the Stanford-like campus core
			// (examples/campus): all-pairs connectivity, one guarantee, one
			// capped class through a middlebox.
			name: "campus",
			build: func(t *testing.T) (*Policy, *Topology, Placement, Options) {
				st := topo.Stanford(6, 1, Gbps)
				ids := st.Identities()
				a, _ := ids.Of(st.MustLookup("h0_0"))
				b, _ := ids.Of(st.MustLookup("h1_0"))
				c, _ := ids.Of(st.MustLookup("h2_0"))
				d, _ := ids.Of(st.MustLookup("h3_0"))
				src := `
[ g : (eth.src = ` + a.MAC + ` and eth.dst = ` + b.MAC + `) -> .* at min(100Mbps)
  w : (eth.src = ` + c.MAC + ` and eth.dst = ` + d.MAC + ` and tcp.dst = 80) -> .* dpi .*
  rest : (tcp.dst = 22) -> .* ],
max(w, 50MB/s)
`
				pol, err := ParsePolicy(src, st)
				if err != nil {
					t.Fatal(err)
				}
				return pol, st, Placement{"dpi": {"mb0"}}, Options{}
			},
		},
		{
			// The §4.1 tenant refinement (examples/delegation) compiled to
			// the dataplane on the Fig. 2 topology: web logged, ssh plain,
			// the (negated-predicate) rest through dpi, all capped.
			name: "delegation",
			build: func(t *testing.T) (*Policy, *Topology, Placement, Options) {
				tp := Example(Gbps)
				ids := tp.Identities()
				h1, _ := ids.Of(tp.MustLookup("h1"))
				h2, _ := ids.Of(tp.MustLookup("h2"))
				src := `
[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 80) -> .* log .*
  y : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 22) -> .*
  z : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and
       !(tcp.dst = 22 or tcp.dst = 80)) -> .* dpi .* ],
max(x, 50MB/s) and max(y, 25MB/s) and max(z, 25MB/s)
`
				pol, err := ParsePolicy(src, tp)
				if err != nil {
					t.Fatal(err)
				}
				return pol, tp, Placement{"log": {"m1"}, "dpi": {"m1"}}, Options{}
			},
		},
	}
}

// renderResult dumps every dataplane-facing section of a compile result in
// a deterministic text form: OpenFlow rules, queue reservations, tc and
// iptables commands, Click configurations, VLAN tag allocations, end-host
// interpreter programs, and the chosen guaranteed paths.
func renderResult(res *Result) string {
	var sb strings.Builder
	out := res.Output
	fmt.Fprintf(&sb, "== rules (%d)\n", len(out.Rules))
	for _, r := range out.Rules {
		fmt.Fprintf(&sb, "%s\n", r.String())
	}
	fmt.Fprintf(&sb, "== queues (%d)\n", len(out.Queues))
	for _, q := range out.Queues {
		fmt.Fprintf(&sb, "sw=%d port=%d queue=%d min=%g\n", q.Switch, q.Port, q.Queue, q.MinBps)
	}
	fmt.Fprintf(&sb, "== tc (%d)\n", len(out.TC))
	for _, hc := range out.TC {
		fmt.Fprintf(&sb, "host=%d kind=%s %s\n", hc.Host, hc.Kind, hc.Command)
	}
	fmt.Fprintf(&sb, "== iptables (%d)\n", len(out.IPTables))
	for _, hc := range out.IPTables {
		fmt.Fprintf(&sb, "host=%d kind=%s %s\n", hc.Host, hc.Kind, hc.Command)
	}
	fmt.Fprintf(&sb, "== click (%d)\n", len(out.Click))
	for _, cc := range out.Click {
		fmt.Fprintf(&sb, "node=%d fn=%s %s\n", cc.Node, cc.Fn, cc.Config)
	}
	fmt.Fprintf(&sb, "== tags (%d)\n", len(out.Tags))
	tagIDs := make([]string, 0, len(out.Tags))
	for id := range out.Tags {
		tagIDs = append(tagIDs, id)
	}
	sort.Strings(tagIDs)
	for _, id := range tagIDs {
		fmt.Fprintf(&sb, "%s: %v\n", id, out.Tags[id])
	}
	fmt.Fprintf(&sb, "== programs (%d)\n", len(res.Programs))
	progHosts := make([]NodeID, 0, len(res.Programs))
	for h := range res.Programs {
		progHosts = append(progHosts, h)
	}
	sort.Slice(progHosts, func(i, j int) bool { return progHosts[i] < progHosts[j] })
	for _, h := range progHosts {
		p := res.Programs[h]
		fmt.Fprintf(&sb, "host=%d name=%s default=%s\n", h, p.Name, p.Default)
		for _, cl := range p.Clauses {
			fmt.Fprintf(&sb, "  op=%d rate=%g burst=%g pred=%s\n", cl.Op, cl.RateBps, cl.BurstBytes, pred.Format(cl.Pred))
		}
	}
	fmt.Fprintf(&sb, "== paths (%d)\n", len(res.Paths))
	pathIDs := make([]string, 0, len(res.Paths))
	for id := range res.Paths {
		pathIDs = append(pathIDs, id)
	}
	sort.Strings(pathIDs)
	for _, id := range pathIDs {
		fmt.Fprintf(&sb, "%s: %s\n", id, strings.Join(res.Paths[id], " "))
	}
	return sb.String()
}

// TestGoldenBackendParity locks the default-target backend output of the
// four example workloads byte-for-byte against the committed golden files,
// which were generated by the pre-redesign monolithic codegen.Generate.
// Any change to lowering, a built-in backend, or target routing that
// perturbs a single byte of OpenFlow/Click/tc/iptables/host output fails
// here.
func TestGoldenBackendParity(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			pol, tp, place, opts := sc.build(t)
			res, err := Compile(pol, tp, place, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := renderResult(res)
			path := filepath.Join("testdata", "golden", sc.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s: output diverged from pre-redesign golden\n%s", sc.name, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff reports the first differing line between two renderings.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, w, g)
		}
	}
	return "outputs equal length but differ (unreachable)"
}
