module merlin

go 1.24
