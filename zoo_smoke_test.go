package merlin

import (
	"fmt"
	"testing"

	"merlin/internal/zoo"
)

// TestZooCompileSmoke compiles a two-statement policy — one bandwidth
// guarantee plus one plain path constraint — across every topology of
// the synthetic Topology Zoo (the paper's Fig. 6 sweep, two statements
// instead of all pairs). It is a breadth test: every structural family
// (rings, stars, trees, meshes, Waxman graphs) at every size must parse,
// provision, and generate code without error.
func TestZooCompileSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles all 262 zoo topologies; skipped in -short")
	}
	for _, e := range zoo.Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			tp := zoo.Generate(e.Index, 2)
			hosts := tp.Hosts()
			if len(hosts) < 2 {
				t.Fatalf("%s: only %d hosts", e.Name, len(hosts))
			}
			ids := tp.Identities()
			a, _ := ids.Of(hosts[0])
			b, _ := ids.Of(hosts[len(hosts)-1])
			src := fmt.Sprintf(`
[ g : (eth.src = %s and eth.dst = %s) -> .* at min(5Mbps)
  p : (eth.src = %s and eth.dst = %s) -> .* ]`, a.MAC, b.MAC, b.MAC, a.MAC)
			pol, err := ParsePolicy(src, tp)
			if err != nil {
				t.Fatalf("%s: parse: %v", e.Name, err)
			}
			// The sweep is a breadth test; the largest networks provision
			// with the greedy allocator so the exact-MIP cost on 100+
			// switch graphs does not dominate the suite (the MIP path
			// still runs on the ~200 smaller topologies).
			opts := Options{NoDefault: true, Greedy: e.Switches > 100}
			res, err := Compile(pol, tp, nil, opts)
			if err != nil {
				t.Fatalf("%s (%s, %d switches): compile: %v", e.Name, e.Family, e.Switches, err)
			}
			if len(res.Paths["g"]) < 2 {
				t.Fatalf("%s: guarantee got degenerate path %v", e.Name, res.Paths["g"])
			}
			if res.Counts().OpenFlow == 0 {
				t.Fatalf("%s: no forwarding rules generated", e.Name)
			}
		})
	}
}
