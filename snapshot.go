package merlin

import (
	"encoding/json"
	"fmt"
)

// Snapshot is a Compiler's durable state at a point in time — what
// merlind persists so a restart can skip replaying the journal from
// genesis. It is deliberately small: the compiled output (rules, queue
// reservations, device programs) is a pure deterministic function of
// (policy, topology, placement) — the byte-identity invariants the
// incremental and sharding test suites pin — so the snapshot records
// only those inputs in canonical form and restore recompiles them. The
// artifact caches (product graphs, sink trees, shard bases) rebuild as
// a side effect of that one compile, leaving the compiler exactly as
// warm as the one that took the snapshot.
type Snapshot struct {
	// Seq is the journal sequence the snapshot covers: every record with
	// a sequence ≤ Seq is folded into it. Set by the caller (merlind)
	// when pairing the snapshot with its journal.
	Seq uint64 `json:"seq"`
	// Policy is the current policy in canonical concrete syntax —
	// Policy.String(), a verified ParsePolicy fixed point.
	Policy string `json:"policy"`
	// Place is the function placement table.
	Place Placement `json:"place,omitempty"`
	// Topo is the bound topology's dynamic state (failures, capacity
	// changes) relative to a pristine construction of the same network.
	Topo TopoState `json:"topo"`
}

// TopoState captures a topology's dynamic state — everything SetLinkState /
// SetNodeState / SetCableCapacity can have changed since construction.
type TopoState struct {
	// DownNodes lists failed nodes by name.
	DownNodes []string `json:"down_nodes,omitempty"`
	// Cables lists every physical cable with its current per-direction
	// capacity and administrative down flag. The flag is recorded
	// independently of node state: a cable failed while its switch was
	// also down must stay down when the switch recovers.
	Cables []CableState `json:"cables"`
}

// CableState is one cable's dynamic state, endpoints by name.
type CableState struct {
	A           string  `json:"a"`
	B           string  `json:"b"`
	CapacityBps float64 `json:"capacity_bps"`
	Down        bool    `json:"down,omitempty"`
}

// Marshal encodes the snapshot for a journal.Store.Snapshot payload.
func (s *Snapshot) Marshal() ([]byte, error) { return json.Marshal(s) }

// ParseSnapshot decodes a snapshot payload.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("merlin: parse snapshot: %w", err)
	}
	return &s, nil
}

// Snapshot captures the compiler's durable state. It requires at least
// one successful Compile (there is no policy to record before that).
func (c *Compiler) Snapshot() (*Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.source == nil {
		return nil, fmt.Errorf("merlin: Compiler.Snapshot called before the first Compile")
	}
	return &Snapshot{
		Policy: c.source.String(),
		Place:  clonePlacement(c.place),
		Topo:   CaptureTopoState(c.t),
	}, nil
}

// CaptureTopoState records a topology's dynamic state relative to a
// pristine construction of the same network.
func CaptureTopoState(t *Topology) TopoState {
	var st TopoState
	for _, n := range t.Nodes() {
		if !t.NodeIsUp(n.ID) {
			st.DownNodes = append(st.DownNodes, n.Name)
		}
	}
	for _, l := range t.Links() {
		if t.Cable(l.ID) != l.ID {
			continue // record each cable once, in its canonical direction
		}
		st.Cables = append(st.Cables, CableState{
			A:           t.Node(l.Src).Name,
			B:           t.Node(l.Dst).Name,
			CapacityBps: l.Capacity,
			Down:        t.LinkFlaggedDown(l.ID),
		})
	}
	return st
}

// ApplyTopoState replays a captured dynamic state onto a pristine
// topology of the same structure. Link flags are applied before node
// failures so the flag-while-node-down semantics reproduce exactly.
func ApplyTopoState(t *Topology, st TopoState) error {
	lookup := func(name string) (NodeID, error) {
		id, ok := t.Lookup(name)
		if !ok {
			return 0, fmt.Errorf("merlin: restore: snapshot names node %q absent from the topology", name)
		}
		return id, nil
	}
	for _, cs := range st.Cables {
		a, err := lookup(cs.A)
		if err != nil {
			return err
		}
		b, err := lookup(cs.B)
		if err != nil {
			return err
		}
		if _, ok := t.CableBetween(a, b); !ok {
			return fmt.Errorf("merlin: restore: snapshot names cable %s–%s absent from the topology", cs.A, cs.B)
		}
		if _, err := t.SetCableCapacity(a, b, cs.CapacityBps); err != nil {
			return fmt.Errorf("merlin: restore cable %s–%s: %w", cs.A, cs.B, err)
		}
		if cs.Down {
			if _, err := t.SetLinkState(a, b, false); err != nil {
				return fmt.Errorf("merlin: restore cable %s–%s: %w", cs.A, cs.B, err)
			}
		}
	}
	for _, name := range st.DownNodes {
		id, err := lookup(name)
		if err != nil {
			return err
		}
		if _, err := t.SetNodeState(id, false); err != nil {
			return fmt.Errorf("merlin: restore node %s: %w", name, err)
		}
	}
	return nil
}

// RestoreCompiler rebuilds a warm compiler from a snapshot: it replays
// the snapshot's topology state onto the given pristine topology,
// constructs a compiler over it, and compiles the snapshot policy —
// which, by the pipeline's determinism, reconstructs the compiled
// output byte-identically and repopulates every artifact cache. The
// caller then replays the journal tail (ApplyJournalRecord) to roll the
// compiler forward to the crash point.
func RestoreCompiler(t *Topology, snap *Snapshot, opts Options) (*Compiler, *Result, error) {
	if err := ApplyTopoState(t, snap.Topo); err != nil {
		return nil, nil, err
	}
	c := NewCompiler(t, snap.Place, opts)
	pol, err := ParsePolicy(snap.Policy, t)
	if err != nil {
		return nil, nil, fmt.Errorf("merlin: restore: snapshot policy does not parse: %w", err)
	}
	res, err := c.Compile(pol)
	if err != nil {
		return nil, nil, fmt.Errorf("merlin: restore: snapshot policy does not compile: %w", err)
	}
	return c, res, nil
}
