// Datacenter: the §6.2 scenario — give Hadoop shuffle traffic bandwidth
// guarantees on a fat-tree fabric so background UDP cannot starve it, then
// simulate the sort job under the three configurations the paper measures.
package main

import (
	"fmt"
	"log"

	merlin "merlin"
	"merlin/internal/sim"
)

func main() {
	// Compile the guarantee policy on a k=4 fat tree: the first four
	// hosts form the Hadoop cluster; shuffle pairs get guarantees.
	t := merlin.FatTree(4, merlin.Gbps)
	ids := t.Identities()
	macs := ids.MACs()[:4]
	src := "[\n"
	n := 0
	for i, s := range macs {
		for j, d := range macs {
			if i == j {
				continue
			}
			// 150 Mbps per pair: each host's access cable carries six
			// shuffle flows (3 out + 3 in), so 6 × 150M = 900M fits the
			// 1 Gbps cable that equation 2 pools across both directions.
			src += fmt.Sprintf(" h%d : (eth.src = %s and eth.dst = %s) -> .* at min(150Mbps) ;\n", n, s, d)
			n++
		}
	}
	src += "]"
	pol, err := merlin.ParsePolicy(src, t)
	if err != nil {
		log.Fatal(err)
	}
	// Twelve guaranteed classes through the exact MIP take minutes with
	// the bundled solver; the greedy allocator provisions the same
	// configuration flow in milliseconds (see the greedy-vs-MIP ablation).
	res, err := merlin.Compile(pol, t, nil, merlin.Options{Greedy: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioned %d guaranteed shuffle classes; %d queue configs\n",
		len(res.Paths), len(res.Output.Queues))

	// Simulate the sort job in the three paper configurations.
	for _, cfg := range []struct {
		name string
		c    sim.HadoopConfig
	}{
		{"baseline (exclusive network)", sim.HadoopConfig{}},
		{"with UDP interference", sim.HadoopConfig{Background: true}},
		{"interference + 90% guarantee", sim.HadoopConfig{Background: true, GuaranteeFraction: 0.9}},
	} {
		r, err := sim.RunHadoop(cfg.c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %.0f s (shuffle %.0f s)\n", cfg.name, r.CompletionSeconds, r.ShuffleSeconds)
	}
}
