// Quickstart: compile the paper's §2 running example — FTP traffic
// inspected and capped, HTTP guaranteed and routed through dpi and nat —
// on the Figure 2 topology, then print the generated configuration.
package main

import (
	"fmt"
	"log"

	merlin "merlin"
)

func main() {
	// The Figure 2 topology: h1 - s1 - s2 - h2 with middlebox m1 on s1.
	t := merlin.Example(merlin.Gbps)
	ids := t.Identities()
	h1, _ := ids.Of(t.MustLookup("h1"))
	h2, _ := ids.Of(t.MustLookup("h2"))

	src := `
# FTP data must pass deep-packet inspection.
[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 20) -> .* dpi .*
  y : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 21) -> .*
  z : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 80) -> .* dpi .* nat .* ],
max(x + y, 50MB/s) and min(z, 10MB/s)
`
	pol, err := merlin.ParsePolicy(src, t)
	if err != nil {
		log.Fatal(err)
	}
	res, err := merlin.Compile(pol, t, merlin.Placement{
		"dpi": {"h1", "h2", "m1"},
		"nat": {"m1"},
	}, merlin.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("guaranteed path for z:", merlin.DescribePath(res.Paths["z"]))
	for _, pl := range res.Placements["z"] {
		fmt.Printf("  %s placed at %s\n", pl.Fn, pl.Location)
	}
	fmt.Println("localized allocations:")
	for id, a := range res.Allocations {
		fmt.Printf("  %s: min=%.0f Mbps max=%.0f Mbps\n", id, a.Min/1e6, a.Max/1e6)
	}
	c := res.Counts()
	fmt.Printf("emitted: %d OpenFlow rules, %d queues, %d tc, %d click\n",
		c.OpenFlow, c.Queues, c.TC, c.Click)
	for _, r := range res.Output.Rules {
		fmt.Println("  rule:", r)
	}
}
