// Campus: the Fig. 4 expressiveness suite — five policies of increasing
// richness on the Stanford-style campus core, comparing lines of Merlin
// against generated instruction counts.
package main

import (
	"fmt"
	"log"

	"merlin/internal/experiments"
)

func main() {
	rows, err := experiments.Fig4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy (Merlin loc)          generated instructions")
	for _, r := range rows {
		fmt.Println(r.Format())
	}
	fmt.Println("\nA few lines of Merlin replace thousands of device-level instructions;")
	fmt.Println("the bandwidth policy multiplies rules because guarantees need per-class")
	fmt.Println("paths and queues (the paper's Fig. 4 observation).")
}
