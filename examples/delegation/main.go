// Delegation: the §4 negotiator workflow — delegate a capped policy to a
// tenant, verify a valid refinement and reject an invalid one, renegotiate
// bandwidth over the TCP protocol, and run the AIMD/MMFS adaptation
// schemes of Fig. 10.
package main

import (
	"fmt"
	"log"
	"net"

	merlin "merlin"
	"merlin/internal/negotiate"
	"merlin/internal/policy"
	"merlin/internal/pred"
)

func main() {
	// The §4.1 example: all pair traffic capped at 100 MB/s.
	original, err := policy.Parse(`
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],
max(x, 100MB/s)
`, policy.Env{})
	if err != nil {
		log.Fatal(err)
	}
	root := merlin.NewNegotiator("admin", original)
	tenant, err := root.Delegate("tenant-a", pred.True)
	if err != nil {
		log.Fatal(err)
	}

	// The tenant refines: web logged at 50, ssh 25, the rest through dpi
	// at 25 — exactly the paper's §4.1 transformation.
	refined, err := policy.Parse(`
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .* log .*
  y : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 22) -> .*
  z : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and
       !(tcp.dst = 22 or tcp.dst = 80)) -> .* dpi .* ],
max(x, 50MB/s) and max(y, 25MB/s) and max(z, 25MB/s)
`, policy.Env{})
	if err != nil {
		log.Fatal(err)
	}
	recompile, err := tenant.Propose(refined)
	if err != nil {
		log.Fatal("valid refinement rejected: ", err)
	}
	fmt.Printf("refinement accepted (recompilation needed: %v)\n", recompile)

	// An over-allocation is caught by verification.
	greedy, _ := policy.Parse(`
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],
max(x, 400MB/s)
`, policy.Env{})
	if _, err := tenant.Propose(greedy); err != nil {
		fmt.Println("over-allocation rejected:", err)
	}

	// Bandwidth renegotiation over TCP: two tenants share 100 Mbps.
	srv := negotiate.NewServer(100e6)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	a, err := negotiate.Dial(ln.Addr().String(), "tenant-a")
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := negotiate.Dial(ln.Addr().String(), "tenant-b")
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	ga, _ := a.Demand(80e6)
	gb, _ := b.Demand(80e6)
	ga, _ = a.Demand(80e6) // re-demand after b joined
	fmt.Printf("negotiated: tenant-a %.0f Mbps, tenant-b %.0f Mbps\n", ga/1e6, gb/1e6)

	// Fig. 10 adaptation schemes.
	aimd, err := negotiate.RunAIMD(negotiate.AIMDConfig{Seconds: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AIMD mean rates: %s %.0f Mbps, %s %.0f Mbps (sawtooth sharing)\n",
		aimd[0].Name, aimd[0].Mean()/1e6, aimd[1].Name, aimd[1].Mean()/1e6)
	mmfs, err := negotiate.RunMMFS(negotiate.MMFSConfig{})
	if err != nil {
		log.Fatal(err)
	}
	last := len(mmfs[0].Samples) - 1
	fmt.Printf("MMFS final rates: %s %.0f Mbps, %s %.0f Mbps (fair convergence)\n",
		mmfs[0].Name, mmfs[0].Samples[last].Rate/1e6,
		mmfs[1].Name, mmfs[1].Samples[last].Rate/1e6)
}
