package merlin

import (
	"errors"
	"fmt"
	"time"

	"merlin/internal/logical"
	"merlin/internal/topo"
)

// TopoEventKind classifies a topology event.
type TopoEventKind int

// Topology event kinds. Down events remove connectivity, Up events restore
// it, and SetCapacity re-dimensions a cable without touching the graph
// structure.
const (
	LinkDown TopoEventKind = iota
	LinkUp
	SwitchDown
	SwitchUp
	SetCapacity
)

// String returns the event kind's name.
func (k TopoEventKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	case SetCapacity:
		return "set-capacity"
	default:
		return fmt.Sprintf("topo-event(%d)", int(k))
	}
}

// TopoEvent is one topology change — the §6 dynamic-adaptation events a
// long-running controller receives from its failure detector. Unlike
// policy deltas, topology events are facts about the world: Update applies
// them (and invalidates the caches they stale) even when the rest of the
// delta is rejected, so a failed recompile never resurrects a dead link.
type TopoEvent struct {
	Kind TopoEventKind
	// A and B name the cable's endpoints for LinkDown/LinkUp/SetCapacity;
	// A alone names the element for SwitchDown/SwitchUp (any node kind is
	// accepted — failing a host models a dead server).
	A, B string
	// Capacity is the new per-direction capacity in bits/s (SetCapacity).
	Capacity float64
}

// Event constructors, for readable call sites.

// LinkFailure fails the cable between two named nodes.
func LinkFailure(a, b string) TopoEvent { return TopoEvent{Kind: LinkDown, A: a, B: b} }

// LinkRecovery restores the cable between two named nodes.
func LinkRecovery(a, b string) TopoEvent { return TopoEvent{Kind: LinkUp, A: a, B: b} }

// SwitchFailure fails a named node and every incident link.
func SwitchFailure(name string) TopoEvent { return TopoEvent{Kind: SwitchDown, A: name} }

// SwitchRecovery restores a named node (links failed independently stay down).
func SwitchRecovery(name string) TopoEvent { return TopoEvent{Kind: SwitchUp, A: name} }

// CapacityChange sets the cable between two named nodes to a new
// per-direction capacity.
func CapacityChange(a, b string, capacity float64) TopoEvent {
	return TopoEvent{Kind: SetCapacity, A: a, B: b, Capacity: capacity}
}

// ApplyTopo applies topology events and incrementally recompiles, exactly
// like Update(Delta{Topo: events}): the device-level diff is the reroute —
// the rules to install and remove so traffic avoids failed elements (or
// reclaims restored ones).
func (c *Compiler) ApplyTopo(events ...TopoEvent) (*Diff, error) {
	return c.Update(Delta{Topo: events})
}

// WatchTopo consumes topology events — a controller's failure-detector
// stream — until the channel closes, applying each batch through Update
// and handing the reroute diff to onDiff (which may be nil). Events
// already queued when one arrives are coalesced into a single recompile;
// with Options.TopoDebounce set, the watcher additionally holds the
// batch open for that window after the first event arrives, so a
// correlated failure storm whose events trickle in (a switch going down
// followed by loss-of-light on each link it carried) still collapses
// into one invalidation sweep and one recompile.
// Errors (a malformed event, a failure that makes a guarantee
// unsatisfiable) are reported to onErr (which may be nil) and the loop
// continues; an applied topology mutation is never rolled back. Because
// Update validates a batch all-or-nothing, a rejected multi-event batch
// is retried one event at a time, so one malformed event cannot discard
// the valid failures coalesced alongside it — those remain facts and are
// applied, each yielding its own diff. Updates serialize with concurrent
// negotiation ticks (Watch) on the compiler's lock. The returned channel
// closes when the event channel does.
func (c *Compiler) WatchTopo(events <-chan TopoEvent, onDiff func(*Diff), onErr func(error)) <-chan struct{} {
	done := make(chan struct{})
	debounce := c.opts.TopoDebounce
	go func() {
		defer close(done)
		for ev := range events {
			c.ApplyTopoBatch(collectTopoBatch(ev, events, debounce), onDiff, onErr)
		}
	}()
	return done
}

// collectTopoBatch coalesces the events already queued behind the first
// one into a single batch. With a debounce window it additionally holds
// the batch open for that window (anchored at the first event) so a
// failure storm whose events trickle in still collapses into one batch;
// without one it drains whatever is immediately available.
func collectTopoBatch(first TopoEvent, events <-chan TopoEvent, debounce time.Duration) []TopoEvent {
	batch := []TopoEvent{first}
	if debounce > 0 {
		timer := time.NewTimer(debounce)
		for {
			select {
			case next, ok := <-events:
				if !ok {
					timer.Stop()
					return batch
				}
				batch = append(batch, next)
			case <-timer.C:
				return batch
			}
		}
	}
	for {
		select {
		case next, ok := <-events:
			if !ok {
				return batch
			}
			batch = append(batch, next)
		default:
			return batch
		}
	}
}

// ApplyTopoBatch applies one coalesced batch of topology events with
// WatchTopo's semantics — per-event retry when up-front validation
// rejects a multi-event batch, error reporting without rollback when a
// recompile fails after the events stuck — and returns the events that
// were actually applied to the topology. That return value is the
// durability hook merlind journals: on full success the whole batch; on
// a validation rejection, the individually-accepted subset (a rejected
// event never mutated anything); on a post-apply recompile failure, the
// whole batch still — topology events are facts and are never rolled
// back. onDiff and onErr may be nil.
func (c *Compiler) ApplyTopoBatch(batch []TopoEvent, onDiff func(*Diff), onErr func(error)) []TopoEvent {
	diff, err := c.Update(Delta{Topo: batch})
	if err == nil {
		if onDiff != nil {
			onDiff(diff)
		}
		return batch
	}
	if len(batch) > 1 && isTopoValidationError(err) {
		// The batch was rejected up front by a malformed event, before
		// anything mutated; the rest are still facts. Re-apply
		// individually. (A post-apply recompile failure takes the plain
		// error path instead: the events already stuck, so per-event
		// retries would only repeat the same failing recompile.)
		var applied []TopoEvent
		for _, ev := range batch {
			if diff, err := c.Update(Delta{Topo: []TopoEvent{ev}}); err != nil {
				if onErr != nil {
					onErr(err)
				}
				if !isTopoValidationError(err) {
					applied = append(applied, ev) // stuck; only the recompile failed
				}
			} else {
				applied = append(applied, ev)
				if onDiff != nil {
					onDiff(diff)
				}
			}
		}
		return applied
	}
	if onErr != nil {
		onErr(err)
	}
	if isTopoValidationError(err) {
		return nil // single malformed event: rejected before any mutation
	}
	return batch // events stuck; only the recompile failed
}

// topoEventError marks a batch rejected during up-front validation —
// before any mutation — so WatchTopo can distinguish "nothing was
// applied, retry the valid events individually" from "the events stuck
// but the recompile failed".
type topoEventError struct{ err error }

func (e *topoEventError) Error() string { return e.err.Error() }
func (e *topoEventError) Unwrap() error { return e.err }

// isTopoValidationError reports whether an Update error was an up-front
// topology-event validation rejection (nothing mutated) as opposed to a
// failure after the events were applied.
func isTopoValidationError(err error) bool {
	var ve *topoEventError
	return errors.As(err, &ve)
}

// applyTopoEvents validates all events, applies them to the bound
// topology, and invalidates every cached artifact the mutations can have
// staled. Callers hold c.mu. Validation happens up front so a bad event
// in a batch rejects the whole batch before anything mutates; once
// application starts it cannot fail.
//
// Invalidation policy, per event:
//
//   - SetCapacity: graph structure is intact, so no artifact is dropped;
//     the cable lands in the dirty set and provisioning re-solves exactly
//     the shards whose product graphs can ride it, warm-started from
//     their cached bases (the model shape is unchanged).
//   - LinkDown/SwitchDown: automaton-derived artifacts are invalidated
//     selectively, by cable incidence. Anchored per-statement product
//     graphs are evicted only when an edge rides an affected cable;
//     minimized best-effort graphs get the same scoping, and a sink tree
//     falls with its graph (tree edges are a subset of graph edges, so a
//     surviving graph's trees still describe the degraded topology
//     exactly). Shard-local re-provisioning follows from the graph
//     identity checks: rebuilt graphs force a cold shard solve, untouched
//     shards are served from the previous solution.
//   - LinkUp/SwitchUp: invalidation is selective here too, by outage
//     stamp. Every product graph records the cables that were down when
//     it was built; a recovery evicts exactly the graphs whose stamp
//     contains a restored cable. The others cannot gain edges from the
//     restoration: a graph built while the cable was live either already
//     rides it — in which case the failure evicted it and its rebuild
//     carries the outage stamp — or provably never could. The
//     provisioning artifact is kept: surviving graphs have no edges on
//     restored cables, so their shards reuse outright, and rebuilt graphs
//     force cold shard solves through the graph identity checks. A
//     recovery tick thus costs what the matching failure tick cost,
//     not a near-full recompile.
func (c *Compiler) applyTopoEvents(events []TopoEvent) error {
	type resolved struct {
		ev   TopoEvent
		a, b topo.NodeID
	}
	rs := make([]resolved, len(events))
	for i, ev := range events {
		a, ok := c.t.Lookup(ev.A)
		if !ok {
			return &topoEventError{fmt.Errorf("merlin: topology event %d (%s): unknown node %q", i, ev.Kind, ev.A)}
		}
		r := resolved{ev: ev, a: a}
		switch ev.Kind {
		case LinkDown, LinkUp, SetCapacity:
			b, ok := c.t.Lookup(ev.B)
			if !ok {
				return &topoEventError{fmt.Errorf("merlin: topology event %d (%s): unknown node %q", i, ev.Kind, ev.B)}
			}
			if _, ok := c.t.CableBetween(a, b); !ok {
				return &topoEventError{fmt.Errorf("merlin: topology event %d (%s): no link between %q and %q", i, ev.Kind, ev.A, ev.B)}
			}
			if ev.Kind == SetCapacity && ev.Capacity <= 0 {
				return &topoEventError{fmt.Errorf("merlin: topology event %d: capacity must be positive, got %g", i, ev.Capacity)}
			}
			r.b = b
		case SwitchDown, SwitchUp:
		default:
			return &topoEventError{fmt.Errorf("merlin: topology event %d: unknown kind %d", i, int(ev.Kind))}
		}
		rs[i] = r
	}
	for _, r := range rs {
		var im topo.Impact
		var err error
		up := false
		switch r.ev.Kind {
		case LinkDown, LinkUp:
			up = r.ev.Kind == LinkUp
			im, err = c.t.SetLinkState(r.a, r.b, up)
		case SwitchDown, SwitchUp:
			up = r.ev.Kind == SwitchUp
			im, err = c.t.SetNodeState(r.a, up)
		case SetCapacity:
			im, err = c.t.SetCableCapacity(r.a, r.b, r.ev.Capacity)
		}
		if err != nil {
			// Defensive: validation above should have caught everything.
			return fmt.Errorf("merlin: topology event (%s): %w", r.ev.Kind, err)
		}
		c.stats.TopoEvents++
		if len(im.Cables) == 0 && !im.ConnectivityChanged {
			continue // no-op (element already in the requested state)
		}
		if c.dirtyCables == nil {
			c.dirtyCables = map[topo.LinkID]bool{}
		}
		for _, cb := range im.Cables {
			c.dirtyCables[cb] = true
		}
		if !im.ConnectivityChanged {
			continue
		}
		c.tainted = true
		cables := make(map[topo.LinkID]bool, len(im.Cables))
		for _, cb := range im.Cables {
			cables[cb] = true
		}
		// Maintain the down-cable set copy-on-write: artifacts stamped with
		// the old map must keep seeing the outage as it was at their build.
		next := make(map[topo.LinkID]bool, len(c.downCables)+len(im.Cables))
		for cb := range c.downCables {
			if !up || !cables[cb] {
				next[cb] = true
			}
		}
		if !up {
			for _, cb := range im.Cables {
				next[cb] = true
			}
		}
		if len(next) == 0 {
			next = nil
		}
		c.downCables = next
		if up {
			// Selective recovery: evict exactly the artifacts built while a
			// restored cable was down — only they can gain edges from the
			// restoration. Anything else saw the cable live when it was
			// built and already proved it cannot ride it (or was evicted by
			// the failure and rebuilt with an outage stamp).
			for _, art := range c.stmts {
				if art.anchored != nil && outageIntersects(art.outage, cables) {
					art.anchored = nil
					c.stats.AnchoredInvalidated++
				}
			}
			var evicted map[string]bool
			for key, ga := range c.graphs {
				if !outageIntersects(ga.outage, cables) {
					continue
				}
				delete(c.graphs, key)
				c.stats.GraphsInvalidated++
				if evicted == nil {
					evicted = map[string]bool{}
				}
				evicted[key] = true
			}
			if evicted != nil {
				for tk := range c.trees {
					if evicted[tk.key] {
						delete(c.trees, tk)
						c.stats.TreesInvalidated++
					}
				}
			}
		} else {
			for _, art := range c.stmts {
				if art.anchored != nil && graphCrossesCables(c.t, art.anchored, cables) {
					art.anchored = nil
					c.stats.AnchoredInvalidated++
				}
			}
			// Best-effort artifacts get the same cable-incidence scoping: a
			// minimized graph with no edge on an affected cable (and every
			// sink tree hanging off it — tree edges are a subset) still
			// describes the degraded topology exactly. Graphs that do cross
			// are repaired in place rather than rebuilt: dropping the edges
			// on affected cables and re-pruning equals a cold build on the
			// degraded topology byte for byte (logical.Graph.WithoutLinks).
			// Each surviving graph's sink trees are then kept when none of
			// their used paths crossed an affected cable — only such a path
			// could change the reverse BFS's distances or tie-breaks
			// (sinktree.Tree.RidesLinks) — and rebuilt otherwise. Patched
			// keys are collected so the tree cache is swept once, not once
			// per patched graph.
			ride := func(l topo.LinkID) bool { return cables[c.t.Cable(l)] }
			var patched map[string]bool
			for key, ga := range c.graphs {
				if !graphCrossesCables(c.t, ga.g, cables) {
					continue
				}
				ga.g = ga.g.WithoutLinks(ride)
				ga.outage = c.downCables
				c.stats.GraphsPatched++
				if patched == nil {
					patched = map[string]bool{}
				}
				patched[key] = true
			}
			if patched != nil {
				for tk, ta := range c.trees {
					if !patched[tk.key] {
						continue
					}
					if ta.tr.RidesLinks(ride) {
						delete(c.trees, tk)
						c.stats.TreesInvalidated++
					} else {
						c.stats.TreesKept++
					}
				}
			}
		}
	}
	return nil
}

// outageIntersects reports whether an artifact's outage stamp contains any
// of the restored cables. Iterates the stamp — outages are small — rather
// than the impact, whose cable list a switch recovery can make long.
func outageIntersects(outage, restored map[topo.LinkID]bool) bool {
	for cb := range outage {
		if restored[cb] {
			return true
		}
	}
	return false
}

// graphCrossesCables reports whether any edge of the product graph rides
// one of the given physical cables.
func graphCrossesCables(t *Topology, g *logical.Graph, cables map[topo.LinkID]bool) bool {
	for i := range g.Edges {
		if l := g.Edges[i].Link; l >= 0 && cables[t.Cable(l)] {
			return true
		}
	}
	return false
}
