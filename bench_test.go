// Benchmarks regenerating every table and figure of the paper's §6
// evaluation, plus the design-choice ablations DESIGN.md calls out. Each
// benchmark runs the same code path as cmd/merlin-bench; EXPERIMENTS.md
// records the paper-vs-measured comparison. Run with:
//
//	go test -bench=. -benchmem
package merlin_test

import (
	"testing"

	"merlin/internal/experiments"
)

// Fig. 4 — expressiveness: five policies on the Stanford campus.
func BenchmarkFig4Expressiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// §6.2 — Hadoop sort under interference and guarantees.
func BenchmarkSec62Hadoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Hadoop(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 5 — Ring Paxos throughput sweep without/with Merlin.
func BenchmarkFig5RingPaxos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 6 — Topology Zoo all-pairs compile times (sampled; merlin-bench
// -zoo-stride 1 covers all 262 networks).
func BenchmarkFig6TopologyZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(25); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 7 (table) — fat-tree provisioning cost split, one sub-benchmark per
// scaled table row.
func BenchmarkTable7FatTree(b *testing.B) {
	for _, c := range experiments.Table7Cases() {
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table7(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Fig. 8 — compile time vs traffic classes, four panels.
func benchFig8(b *testing.B, idx int) {
	c := experiments.Fig8Cases()[idx]
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8aBalancedAllPairs(b *testing.B)   { benchFig8(b, 0) }
func BenchmarkFig8bBalancedGuaranteed(b *testing.B) { benchFig8(b, 1) }
func BenchmarkFig8cFatTreeAllPairs(b *testing.B)    { benchFig8(b, 2) }
func BenchmarkFig8dFatTreeGuaranteed(b *testing.B)  { benchFig8(b, 3) }

// Fig. 9 — negotiator verification scaling: predicates (left), regex
// nodes (middle), allocations (right).
func BenchmarkFig9aPredicates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Predicates([]int{500, 1000, 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9bRegexNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Regexes([]int{100, 300, 600}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9cAllocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Allocations([]int{500, 1000, 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 10 — dynamic adaptation.
func BenchmarkFig10aAIMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10AIMD(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10bMMFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10MMFS(); err != nil {
			b.Fatal(err)
		}
	}
}

// Incremental compilation — full recompile versus Compiler.Update for
// each case (the acceptance benchmark: the k=8 cap-change update must be
// ≥5x faster than the full compile; the experiment rows report the
// measured ratio).
func BenchmarkIncremental(b *testing.B) {
	for _, c := range experiments.IncrementalCases() {
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.IncrementalRun(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablations.
func BenchmarkAblationHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHeuristics(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGreedyVsMIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGreedyVsMIP(6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMinimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMinimization([]int{200}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLocalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLocalization(); err != nil {
			b.Fatal(err)
		}
	}
}
