package merlin

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// ringMAC and ringArc mirror tenantRingPolicy's building blocks for the
// hub tests: two tenants pinned to disjoint halves of an 8-ring.
func ringMAC(tp *Topology, host string) string {
	id, _ := tp.Identities().Of(tp.MustLookup(host))
	return id.MAC
}

func ringArc(lo, hi int) string {
	var names []string
	for i := lo; i < hi; i++ {
		names = append(names, fmt.Sprintf("s%d", i), fmt.Sprintf("h%d_0", i))
	}
	return "(" + strings.Join(names, "|") + ")*"
}

func hubRingPolicy(t *testing.T, tp *Topology, rates string) *Policy {
	t.Helper()
	src := fmt.Sprintf(`
[ a0 : (eth.src = %s and eth.dst = %s) -> %s %s
  b0 : (eth.src = %s and eth.dst = %s) -> %s %s ]`,
		ringMAC(tp, "h0_0"), ringMAC(tp, "h3_0"), ringArc(0, 4), rates,
		ringMAC(tp, "h4_0"), ringMAC(tp, "h7_0"), ringArc(4, 8), rates)
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestCompilerWatchHubCapTicksPatch drives batched cap reallocation ticks
// through a bound compiler: every committed tick must take the
// patched-codegen fast path, never rebuild an artifact, and leave the
// compiled state equal to a fresh compile of the hub's policy.
func TestCompilerWatchHubCapTicksPatch(t *testing.T) {
	tp := Ring(8, 1, 100*MBps)
	hub, err := NewHub(hubRingPolicy(t, tp, "at max(40MB/s)"), HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	if _, err := c.Compile(hub.Policy()); err != nil {
		t.Fatal(err)
	}
	// Caps occupy no capacity: no provisioning pass, so no shard keying to
	// reuse — the hub still shards by the caller's grouping.
	if got := c.NegotiationShards(); got != nil {
		t.Fatalf("caps-only policy has provisioning shards: %v", got)
	}
	base := c.Stats()

	var diffs []*Diff
	c.WatchHub(hub, func(d *Diff) { diffs = append(diffs, d) })
	for _, sh := range []string{"left", "right"} {
		if err := hub.AddShard(sh, 100*MBps); err != nil {
			t.Fatal(err)
		}
	}
	ctrl := AIMDState{Alloc: 10 * MBps, Increase: 5 * MBps, Decrease: 0.5}
	sa, err := hub.Register("tenant-a", "left", []string{"a0"}, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := hub.Register("tenant-b", "right", []string{"b0"}, ctrl)
	if err != nil {
		t.Fatal(err)
	}

	committed := 0
	for i := 0; i < 8; i++ {
		sa.OfferDemand(60 * MBps)
		sb.OfferDemand(30 * MBps)
		rep, err := hub.Tick()
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if rep.Committed {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no tick committed")
	}
	st := c.Stats()
	if got := st.PatchedCodegens - base.PatchedCodegens; got != committed {
		t.Fatalf("%d of %d committed ticks took the patch path", got, committed)
	}
	if st.GraphBuilds != base.GraphBuilds || st.TreeBuilds != base.TreeBuilds ||
		st.StatementBuilds != base.StatementBuilds {
		t.Fatalf("hub ticks were not incremental: %+v -> %+v", base, st)
	}
	if st.TenantsActive != 2 || st.TicksBatched != 8 {
		t.Fatalf("hub counters not mirrored: %+v", st)
	}
	if len(diffs) != committed {
		t.Fatalf("got %d diffs for %d committed ticks", len(diffs), committed)
	}
	sameCompiled(t, "hub-cap-ticks", c.Result(), hub.Policy(), tp, nil, Options{NoDefault: true})
}

// TestCompilerWatchHubGuaranteeTicksWarmShards drives a guarantee
// renegotiation tick: only the changed tenant's provisioning shard may
// re-solve (warm-started), the untouched tenant's shard is reused, and
// the hub shard keying comes from NegotiationShards.
func TestCompilerWatchHubGuaranteeTicksWarmShards(t *testing.T) {
	tp := Ring(8, 1, 100*MBps)
	hub, err := NewHub(hubRingPolicy(t, tp, "at min(10MB/s)"), HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	if _, err := c.Compile(hub.Policy()); err != nil {
		t.Fatal(err)
	}
	shards := c.NegotiationShards()
	if !reflect.DeepEqual(shards, [][]string{{"a0"}, {"b0"}}) {
		t.Fatalf("negotiation shards = %v", shards)
	}
	base := c.Stats()
	c.WatchHub(hub, nil)

	// Key the hub by the provisioning partition: one hub shard per
	// link-disjoint group, one session per tenant.
	sessions := map[string]*Session{}
	for i, group := range shards {
		name := fmt.Sprintf("shard%d", i)
		if err := hub.AddShard(name, 50*MBps); err != nil {
			t.Fatal(err)
		}
		s, err := hub.Register(fmt.Sprintf("tenant%d", i), name, group,
			AIMDState{Alloc: 5 * MBps, Increase: 1 * MBps, Decrease: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		sessions[group[0]] = s.Guarantee()
	}

	// Only tenant b0 renegotiates this window.
	sessions["b0"].OfferDemand(40 * MBps)
	rep, err := hub.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Committed {
		t.Fatal("guarantee tick did not commit")
	}
	st := c.Stats()
	if st.ShardsWarm != base.ShardsWarm+1 {
		t.Fatalf("changed shard not warm-started: %+v -> %+v", base, st)
	}
	if st.ShardsReused != base.ShardsReused+1 {
		t.Fatalf("untouched shard not reused: %+v -> %+v", base, st)
	}
	if st.ShardsSolved != base.ShardsSolved {
		t.Fatalf("guarantee tick solved a shard cold: %+v", st)
	}
	if st.GraphBuilds != base.GraphBuilds || st.StatementBuilds != base.StatementBuilds {
		t.Fatalf("guarantee tick rebuilt artifacts: %+v -> %+v", base, st)
	}
	sameCompiled(t, "hub-guarantee-tick", c.Result(), hub.Policy(), tp, nil, Options{NoDefault: true})
}

// TestCompilerWatchHubProposalAdmission pins the admission-control
// contract: a rejected proposal triggers no recompile at all, an accepted
// one recompiles through the caches, and a repeated proposal is served
// from the verification cache.
func TestCompilerWatchHubProposalAdmission(t *testing.T) {
	tp := Ring(8, 1, 100*MBps)
	hub, err := NewHub(hubRingPolicy(t, tp, "at max(40MB/s)"), HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	if _, err := c.Compile(hub.Policy()); err != nil {
		t.Fatal(err)
	}
	c.WatchHub(hub, nil)
	if err := hub.AddShard("left", 100*MBps); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Register("tenant-a", "left", []string{"a0"}, AIMDState{}); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()

	over := fmt.Sprintf(`[ a0 : (eth.src = %s and eth.dst = %s) -> %s at max(80MB/s) ]`,
		ringMAC(tp, "h0_0"), ringMAC(tp, "h3_0"), ringArc(0, 4))
	overPol, err := ParsePolicy(over, tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Propose("tenant-a", overPol); err == nil {
		t.Fatal("over-allocation accepted")
	}
	st := c.Stats()
	if st.Compiles != base.Compiles {
		t.Fatalf("rejected proposal recompiled: %+v -> %+v", base, st)
	}
	if st.ProposalsRejected != 1 {
		t.Fatalf("rejection not mirrored: %+v", st)
	}

	// A valid split of the delegation recompiles once and sticks.
	split := fmt.Sprintf(`
[ p : (eth.src = %s and eth.dst = %s and tcp.dst = 80) -> %s at max(15MB/s)
  q : (eth.src = %s and eth.dst = %s and tcp.dst != 80) -> %s at max(25MB/s) ]`,
		ringMAC(tp, "h0_0"), ringMAC(tp, "h3_0"), ringArc(0, 4),
		ringMAC(tp, "h0_0"), ringMAC(tp, "h3_0"), ringArc(0, 4))
	splitPol, err := ParsePolicy(split, tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Propose("tenant-a", splitPol); err != nil {
		t.Fatalf("valid refinement rejected: %v", err)
	}
	st = c.Stats()
	if st.Compiles != base.Compiles+1 {
		t.Fatalf("accepted proposal did not recompile once: %+v", st)
	}
	if got := len(hub.Policy().Statements); got != 3 { // p, q, b0
		t.Fatalf("statements after splice = %d", got)
	}
	hits := st.VerifyCacheHits
	if _, err := hub.Propose("tenant-a", splitPol); err != nil {
		t.Fatal(err)
	}
	if st = c.Stats(); st.VerifyCacheHits <= hits {
		t.Fatalf("repeat proposal missed the verify cache: %+v", st)
	}
	sameCompiled(t, "hub-proposal", c.Result(), hub.Policy(), tp, nil, Options{NoDefault: true})
}
