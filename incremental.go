package merlin

import (
	"errors"
	"fmt"
	"sync"

	"merlin/internal/codegen"
	"merlin/internal/interp"
	"merlin/internal/logical"
	"merlin/internal/negotiate"
	"merlin/internal/policy"
	"merlin/internal/provision"
	"merlin/internal/regex"
	"merlin/internal/sinktree"
	"merlin/internal/topo"
)

// Diff is the device-level delta between two compiled outputs — what a
// controller installs and removes to apply a policy update.
type Diff = codegen.Diff

// Compiler is a stateful, incremental version of Compile for long-running
// controllers: it is bound to one topology and keeps every expensive
// compilation artifact — per-statement endpoints and anchored product
// graphs, minimized best-effort product graphs, per-destination sink
// trees, and the provisioning solution with its optimal simplex basis —
// cached across calls, keyed by the inputs that produced it. A recompile
// after a small policy change (the §4 negotiation story: a tenant's cap
// moves, a guarantee's rate is renegotiated, a statement is added)
// rebuilds only the dirtied artifacts; everything else is served from
// cache. A rates-only change re-solves the provisioning MIP warm-started
// from the previous optimal basis, and a caps-only change skips rule
// generation entirely, patching just the tc commands.
//
// The zero Compiler is not usable; construct with NewCompiler. Methods
// are safe for concurrent use. The first Compile (or the Compile wrapper
// function) produces byte-identical output to a cold compile; subsequent
// Compile/Update calls produce output identical to what a fresh Compile
// of the same policy would, up to solver-equivalent provisioning choices.
//
// One cost asymmetry to know about: a delta that interns a new symbol
// into the shared alphabet (a path expression naming a new function or
// location) invalidates every cached automaton-derived artifact, because
// DFA minimization is alphabet-sensitive — and the alphabet cannot
// shrink, so this holds even if that delta is subsequently rejected. The
// tick after such a delta pays near-full-compile cost once, then returns
// to incremental speed.
type Compiler struct {
	mu    sync.Mutex
	t     *Topology
	place Placement
	opts  Options
	ids   *topo.IdentityTable
	hosts []NodeID
	// targets is the resolved backend list (Options.Targets, defaulted
	// and deduplicated); every pass emits exactly these artifacts.
	targets []string

	// alpha is the shared symbol alphabet. It only grows; alphaGen is
	// bumped whenever it does, invalidating every cached automaton-derived
	// artifact (minimization is alphabet-sensitive).
	alpha    *regex.Alphabet
	alphaGen int

	// source is the last policy as handed in (pre-preprocessing); Update
	// deltas apply to it. work/allocs/last mirror the last successful run.
	source *Policy
	work   *Policy
	allocs map[string]Alloc
	last   *Result
	// lastOrder is the last run's statement ID order — priorities depend
	// on position, so codegen patching requires it unchanged.
	lastOrder []string
	// artSource is the statement slice the per-statement cache was last
	// written from; a policy sharing that backing array skips fingerprint
	// checks entirely (policies are treated as immutable).
	artSource []policy.Statement
	// lastPlans retains the last full pass's assembled plans so a
	// caps-only patch can regenerate the IR's cap section without
	// reassembling; they are sorted lazily on first patch. lastProg is
	// the last full pass's lowered program — the patch path shallow-
	// copies it and re-emits only the cap-reachable backends.
	lastPlans   []codegen.Plan
	plansSorted bool
	lastProg    *codegen.Program

	stmts  map[string]*stmtArtifact
	graphs map[string]*graphArtifact
	trees  map[treeKey]*treeArtifact
	prov   *provArtifact
	// dirtyCables accumulates the canonical cable IDs touched by topology
	// events (failures, recoveries, capacity changes) since the last
	// successful provisioning pass. While non-empty, the provisioning
	// cache's identity fast path is bypassed and shard reuse additionally
	// checks cable incidence against this set (provision.Params.Dirty), so
	// a capacity change re-solves exactly the shards that can ride the
	// re-dimensioned cable. A failed pass retains the set — stale shard
	// solutions must not be served by a retry.
	dirtyCables map[topo.LinkID]bool
	// downCables is the set of cables currently out of service (failed
	// links, plus live cables taken down by a failed endpoint switch).
	// Product-graph artifacts built while it is non-empty are stamped with
	// it, so a recovery can evict exactly the artifacts built against the
	// degraded topology. The map is copy-on-write: mutation events install
	// a fresh map, never edit one a stamped artifact may share. Nil while
	// the full fabric is live — the common case, making stamps free.
	downCables map[topo.LinkID]bool
	// tainted records that the statement cache changed (artifact rebuilt
	// or pruned) since the last successful pass. A failed pass leaves it
	// set, so a retry cannot take the codegen patch path against a
	// last-good output the current artifacts no longer describe.
	tainted bool
	// hub is the bound tenant-scale negotiation hub (WatchHub), read by
	// Stats to mirror its counters; neg is the bound negotiator (Watch).
	// Both bindings are exclusive — rebinding detaches the previous
	// hub's/negotiator's commit callback.
	hub *negotiate.Hub
	neg *negotiate.Negotiator

	stats CompilerStats
}

// stmtArtifact caches one statement's phase-1 products. It is valid while
// the statement's fingerprint (predicate + raw path expression) and the
// placement table are unchanged; the anchored graph additionally requires
// the alphabet generation it was built under.
type stmtArtifact struct {
	fp   string
	expr regex.Expr // resolved: placements substituted, identities rewritten
	key  string     // regex.Key(expr)
	pure bool       // predicate only pins endpoints (ByDestination eligible)

	srcs, dsts []NodeID

	anchored    *logical.Graph // guaranteed statements' product graph
	anchoredGen int
	// outage is the compiler's down-cable set when anchored was built (a
	// shared immutable map; nil means full connectivity). A recovery evicts
	// the graph only when it restores a cable in this set — any other graph
	// already saw the restored cable live and cannot gain edges from it.
	outage map[topo.LinkID]bool
}

// graphArtifact caches a minimized best-effort product graph per resolved
// path-expression key.
type graphArtifact struct {
	g       *logical.Graph
	hasTags bool
	gen     int
	// outage mirrors stmtArtifact.outage for the minimized graph; its sink
	// trees need no stamp of their own because a tree falls with its graph.
	outage map[topo.LinkID]bool
}

// treeKey identifies a sink tree: resolved expression key × destination.
type treeKey struct {
	key string
	dst NodeID
}

type treeArtifact struct {
	tr  *sinktree.Tree
	gen int
}

// provArtifact caches the provisioning inputs and solution. Same inputs →
// the solution is reused without a solve; anything else re-solves at
// shard granularity, feeding res.Shards back through provision's Reuse so
// only the shards the change touched are re-solved (rates-only-changed
// shards warm-start from their cached bases).
type provArtifact struct {
	ids       []string
	graphs    []*logical.Graph
	rates     []float64
	heuristic Heuristic
	greedy    bool
	res       *provision.Result
}

// CompilerStats counts what the incremental compiler actually did — the
// observability hook tests and benchmarks use to prove deltas stay
// incremental.
type CompilerStats struct {
	// Compiles counts full-policy passes (Compile calls); Updates counts
	// delta applications.
	Compiles int
	Updates  int
	// StatementBuilds counts per-statement artifact (re)builds;
	// AnchoredBuilds the anchored product graphs among them.
	StatementBuilds int
	AnchoredBuilds  int
	// GraphBuilds and TreeBuilds count minimized product graphs and sink
	// trees built (cache misses).
	GraphBuilds int
	TreeBuilds  int
	// Solves, WarmSolves, and SolvesReused split provisioning runs into
	// runs with at least one cold shard solve, runs whose only work was
	// basis-warm-started shard re-solves, and pure cache hits.
	Solves       int
	WarmSolves   int
	SolvesReused int
	// ShardsSolved, ShardsWarm, and ShardsReused count individual shards
	// across all provisioning runs: cold MIP solves, warm-started
	// re-solves, and shard solutions reused from the previous run without
	// a solve. A Delta that touches one tenant of a link-disjoint
	// multi-tenant policy shows up here as one solved (or warm) shard and
	// the rest reused.
	ShardsSolved int
	ShardsWarm   int
	ShardsReused int
	// FullCodegens and PatchedCodegens split phase 4 into full rule
	// generation and the caps-only tc patch fast path.
	FullCodegens    int
	PatchedCodegens int
	// TopoEvents counts applied topology events (Delta.Topo / ApplyTopo);
	// AnchoredInvalidated counts the per-statement anchored product graphs
	// those events evicted — for a link failure, only the statements whose
	// graphs crossed the failed cable.
	TopoEvents          int
	AnchoredInvalidated int
	// GraphsInvalidated and TreesInvalidated count the minimized
	// best-effort product graphs and sink trees topology events evicted.
	// Failures evict selectively — only artifacts whose cable incidence
	// touches an affected cable — and recoveries are selective too: each
	// artifact records the cables that were down when it was built, so a
	// restored link evicts only the artifacts built while it was out (a
	// graph built under full connectivity cannot gain edges from a
	// recovery it never saw fail).
	GraphsInvalidated int
	TreesInvalidated  int
	// GraphsPatched counts minimized best-effort product graphs a failure
	// repaired in place (edges on affected cables dropped, graph
	// re-pruned) instead of evicting — the repaired graph is byte-
	// identical to a cold build on the degraded topology. TreesKept counts
	// sink trees that survived such a patch because no used path crossed
	// an affected cable; only trees whose used paths did cross are
	// invalidated and rebuilt.
	GraphsPatched int
	TreesKept     int
	// TernaryEntries totals the ternary table entries expanded for v2
	// (TernaryEmitter) targets and budget checks — one count per distinct
	// expansion actually run, so patch-path passes that share artifacts
	// add nothing. OverflowReplacements counts the compiles whose initial
	// placement overflowed a device's table budget and was successfully
	// re-placed through the budget-constrained provisioning MIP.
	TernaryEntries       int
	OverflowReplacements int
	// NetflowShards counts shard solves served by the network-simplex fast
	// path (pure node-arc incidence structure, no branch and bound);
	// BnBNodes totals branch-and-bound nodes explored by the general path.
	// Together they show where provisioning time actually went.
	NetflowShards int
	BnBNodes      int
	// Negotiation-hub counters, mirrored from the bound Hub (WatchHub);
	// zero when no hub is bound. TenantsActive is the live session count;
	// TicksBatched the batched reallocation ticks committed through the
	// compiler; VerifyCacheHits the proposals (and re-validations) served
	// whole from the verification cache; ProposalsRejected the proposals
	// turned away by admission control — each one a recompile that never
	// happened.
	TenantsActive     int
	TicksBatched      int
	VerifyCacheHits   int
	ProposalsRejected int
}

// NewCompiler creates an incremental compiler bound to a topology,
// function placement table, and options. After construction the topology
// must only change through the compiler: placements via Delta.Place,
// link/switch failures, recoveries, and capacity changes via Delta.Topo
// (or ApplyTopo/WatchTopo), which invalidate exactly the caches each
// event stales. Mutating the topology behind the compiler's back leaves
// the caches describing a network that no longer exists.
func NewCompiler(t *Topology, place Placement, opts Options) *Compiler {
	c := &Compiler{
		t:       t,
		place:   clonePlacement(place),
		opts:    opts,
		ids:     t.Identities(),
		hosts:   t.Hosts(),
		targets: resolveTargets(opts.Targets),
		alpha:   logical.Alphabet(t),
		stmts:   map[string]*stmtArtifact{},
		graphs:  map[string]*graphArtifact{},
		trees:   map[treeKey]*treeArtifact{},
	}
	// A topology handed over mid-outage seeds the down-cable set, so
	// artifacts built before the first recovery still carry honest stamps.
	for _, l := range t.Links() {
		if t.Cable(l.ID) == l.ID && !t.LinkIsUp(l.ID) {
			if c.downCables == nil {
				c.downCables = map[topo.LinkID]bool{}
			}
			c.downCables[l.ID] = true
		}
	}
	return c
}

// resolveTargets defaults and deduplicates the requested backend list.
// Unknown names are kept — they fail with a clear error at the next
// compile, where the registry is consulted. A list that filters down to
// nothing (all empty strings) gets the default set too: a compile that
// silently emitted no dataplane output would be worse than either
// behavior a caller could have meant.
func resolveTargets(ts []string) []string {
	seen := make(map[string]bool, len(ts))
	out := make([]string, 0, len(ts))
	for _, name := range ts {
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, name)
	}
	if len(out) == 0 {
		return codegen.DefaultTargets()
	}
	return out
}

// Compile compiles a full policy through the artifact caches. On a fresh
// Compiler this is exactly the one-shot pipeline; on a warm one it reuses
// every artifact whose inputs are unchanged, so handing it a lightly
// edited policy is as cheap as the corresponding Update.
func (c *Compiler) Compile(pol *Policy) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.recompile(pol)
	if err != nil {
		return nil, err
	}
	c.stats.Compiles++
	return res, nil
}

// Result returns the most recent successful compilation result.
func (c *Compiler) Result() *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Topology returns the topology the compiler is bound to — immutable
// after construction except through the compiler itself (Delta.Topo,
// ApplyTopo, WatchTopo). Callers use it to resolve node names and parse
// policies against the bound network; mutating it directly leaves the
// compiler's caches describing a network that no longer exists.
func (c *Compiler) Topology() *Topology { return c.t }

// Stats returns a snapshot of the incremental-work counters. With a hub
// bound (WatchHub), the negotiation counters are folded in from the hub —
// read after releasing the compiler lock, because a committing tick holds
// the hub lock while it recompiles through c.mu.
func (c *Compiler) Stats() CompilerStats {
	c.mu.Lock()
	st := c.stats
	h := c.hub
	c.mu.Unlock()
	if h != nil {
		hs := h.Stats()
		st.TenantsActive = hs.TenantsActive
		st.TicksBatched = hs.TicksBatched
		st.VerifyCacheHits = hs.VerifyCacheHits
		st.ProposalsRejected = hs.ProposalsRejected
	}
	return st
}

// Delta is one incremental policy change for Update. Zero-valued fields
// mean "unchanged".
type Delta struct {
	// Add appends statements to the policy (before the preprocessor's
	// totality default, which is recomputed).
	Add []Statement
	// Remove drops statements by ID.
	Remove []string
	// Formula, if non-nil, replaces the bandwidth formula — the
	// allocation-change path negotiators drive every tick.
	Formula policy.Formula
	// Place, if non-nil, replaces the function placement table. Placement
	// substitution happens during path-expression resolution, so this
	// invalidates every per-statement artifact.
	Place Placement
	// Topo lists topology events — link/switch failures and recoveries,
	// capacity changes — to apply before recompiling. Events are facts,
	// not proposals: they are applied (and the caches they stale
	// invalidated) even if the rest of the delta is rejected, so a failed
	// recompile never leaves the compiler believing in a dead link. The
	// bound topology must only be mutated through this path (or ApplyTopo);
	// mutating it directly leaves the caches stale.
	Topo []TopoEvent
}

// Update applies a delta to the current policy, recompiles only the
// dirtied artifacts, and returns the device-level diff — the rules and
// configurations to install and remove — instead of a full Output. The
// full result remains available via Result.
func (c *Compiler) Update(d Delta) (*Diff, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.source == nil {
		return nil, fmt.Errorf("merlin: Compiler.Update called before the first Compile")
	}
	if len(d.Topo) > 0 {
		if err := c.applyTopoEvents(d.Topo); err != nil {
			return nil, err
		}
	}
	pol, err := c.applyDelta(d)
	if err != nil {
		return nil, err
	}
	if d.Place != nil {
		// Resolved expressions embed placements; swap in a fresh
		// statement cache so they re-resolve. Product graphs and trees
		// stay keyed by resolved expression and survive where keys
		// agree. The swap is committed only if the recompile succeeds —
		// a rejected placement must not take effect on later passes.
		oldPlace, oldStmts, oldArtSource := c.place, c.stmts, c.artSource
		c.place = clonePlacement(d.Place)
		c.stmts = map[string]*stmtArtifact{}
		defer func() {
			if err != nil {
				c.place, c.stmts, c.artSource = oldPlace, oldStmts, oldArtSource
			}
		}()
	}
	old := c.last
	var res *Result
	res, err = c.recompile(pol)
	if err != nil {
		return nil, err
	}
	c.stats.Updates++
	return diffResults(old, res), nil
}

// diffResults builds the device-level delta between two compiled
// results: the typed sections for the built-in backends (plus the
// end-host interpreter programs, which live on the Result rather than
// the Output), and one native-form ArtifactDiff per non-builtin backend
// (Diff.Backends) computed by that backend's own Diff method.
func diffResults(old, new *Result) *Diff {
	var oldOut *codegen.Output
	oldPrograms := map[NodeID]*interp.Program{}
	if old != nil {
		oldOut = old.Output
		oldPrograms = old.Programs
	}
	d := codegen.DiffOutputs(oldOut, new.Output)
	d.DiffPrograms(oldPrograms, new.Programs)
	for name, art := range new.Outputs {
		if codegen.IsBuiltinTarget(name) {
			continue
		}
		b, ok := codegen.Lookup(name)
		if !ok {
			continue
		}
		var oldArt codegen.Artifact
		if old != nil {
			oldArt = old.Outputs[name]
		}
		if d.Backends == nil {
			d.Backends = map[string]codegen.ArtifactDiff{}
		}
		d.Backends[name] = b.Diff(oldArt, art)
	}
	return d
}

// applyDelta materializes the policy the delta describes, without
// touching compiler state.
func (c *Compiler) applyDelta(d Delta) (*Policy, error) {
	if len(d.Add) == 0 && len(d.Remove) == 0 {
		// Formula/placement-only delta: share the statement slice so the
		// recompile recognizes the statements as identical by identity.
		pol := &Policy{Statements: c.source.Statements, Formula: c.source.Formula}
		if d.Formula != nil {
			pol.Formula = d.Formula
		}
		return pol, nil
	}
	removed := make(map[string]bool, len(d.Remove))
	for _, id := range d.Remove {
		removed[id] = true
	}
	pol := &Policy{Formula: c.source.Formula}
	have := map[string]bool{}
	for _, s := range c.source.Statements {
		if removed[s.ID] {
			delete(removed, s.ID)
			continue
		}
		pol.Statements = append(pol.Statements, s)
		have[s.ID] = true
	}
	for id := range removed {
		return nil, fmt.Errorf("merlin: Delta removes unknown statement %q", id)
	}
	for _, s := range d.Add {
		if have[s.ID] {
			return nil, fmt.Errorf("merlin: Delta adds duplicate statement %q", s.ID)
		}
		have[s.ID] = true
		pol.Statements = append(pol.Statements, s)
	}
	if d.Formula != nil {
		pol.Formula = d.Formula
	}
	return pol, nil
}

// recompile runs the staged pipeline over the caches and commits the
// result. Callers hold c.mu. On error the last successful result and all
// cache entries (each individually keyed by its inputs) remain valid.
func (c *Compiler) recompile(pol *Policy) (*Result, error) {
	res := &Result{
		Paths:      map[string][]string{},
		Placements: map[string][]PlacementChoice{},
		Programs:   map[NodeID]*interp.Program{},
	}
	run := &runState{res: res}
	run.aliased = c.artSource != nil && sameStatementSlice(pol.Statements, c.artSource)
	if err := c.checkTargets(); err != nil {
		return nil, err
	}
	if err := c.preprocessStage(pol, run); err != nil {
		return nil, err
	}
	if err := c.statementStage(run); err != nil {
		return nil, err
	}
	c.artSource = pol.Statements
	if err := c.provisionStage(run); err != nil {
		return nil, err
	}
	// The provisioning pass consumed the topology-event dirty set: the new
	// (or revalidated) solution reflects current capacities and
	// connectivity. A failed pass keeps the set, so a retry cannot serve
	// stale shard solutions.
	c.dirtyCables = nil
	if c.patchableCodegen(run) {
		c.codegenPatch(run)
	} else {
		plans, err := c.bestEffortStage(run, c.guaranteedPlans(run))
		if err != nil {
			return nil, err
		}
		if err := c.codegenFull(run, plans); err != nil {
			var of *codegen.TableOverflowError
			if !errors.As(err, &of) || len(run.requests) == 0 || c.opts.Greedy {
				return nil, err
			}
			// A guaranteed placement overflowed a device's table budget:
			// re-solve it with the residual budgets as MIP constraints and
			// run codegen again. If the constrained solve is infeasible the
			// original typed overflow error is returned — the caller learns
			// which devices cannot fit the policy.
			if rerr := c.replaceForBudgets(run); rerr != nil {
				return nil, err
			}
			res.Paths = map[string][]string{}
			res.Placements = map[string][]PlacementChoice{}
			plans, perr := c.bestEffortStage(run, c.guaranteedPlans(run))
			if perr != nil {
				return nil, perr
			}
			if err := c.codegenFull(run, plans); err != nil {
				return nil, err
			}
			c.stats.OverflowReplacements++
		}
	}
	c.source = pol
	c.work = run.work
	c.allocs = run.allocs
	c.last = res
	if len(run.requests) == 0 {
		c.prov = nil
	}
	if c.tainted {
		// The statement set changed this (or a failed earlier) pass:
		// evict product graphs and sink trees no current statement
		// references, so policy churn over distinct path expressions
		// cannot grow the caches without bound. Steady-state ticks skip
		// the sweep.
		used := make(map[string]bool, len(run.arts))
		for _, art := range run.arts {
			used[art.key] = true
		}
		for key := range c.graphs {
			if !used[key] {
				delete(c.graphs, key)
			}
		}
		for tk := range c.trees {
			if !used[tk.key] {
				delete(c.trees, tk)
			}
		}
		c.tainted = false
	}
	order := make([]string, len(run.work.Statements))
	for i, s := range run.work.Statements {
		order[i] = s.ID
	}
	c.lastOrder = order
	return res, nil
}

// sameStatementSlice reports whether two statement slices share the same
// backing array (and length) — identity, not deep equality.
func sameStatementSlice(a, b []policy.Statement) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Watch binds the compiler to a negotiator: every accepted Propose or
// Reallocate recompiles the refined policy through the caches — a
// Reallocate tick that only moves caps takes the patched-codegen fast
// path and never rebuilds a graph — and hands the device-level diff to
// onDiff (which may be nil). A compilation error rejects the negotiation,
// leaving both the negotiator's policy and the compiled state unchanged.
//
// The binding is exclusive on both sides, like WatchHub: a compiler
// follows at most one negotiator, and a negotiator commits into at most
// one compiler. Rebinding to a different negotiator detaches the old
// one — its commits stop reaching this compiler. Unwatch drops the
// binding entirely.
func (c *Compiler) Watch(n *Negotiator, onDiff func(*Diff)) {
	c.mu.Lock()
	old := c.neg
	c.neg = n
	c.mu.Unlock()
	// Callback swaps happen outside c.mu: OnCommit takes the negotiator
	// lock, which a committing tick holds while it recompiles through
	// c.mu — the compiler lock must never wait on a negotiator lock.
	if old != nil && old != n {
		old.OnCommit(nil)
	}
	n.OnCommit(func(pol *policy.Policy, pathsChanged bool) error {
		diff, err := c.compileDiff(pol)
		if err != nil {
			return err
		}
		if onDiff != nil {
			onDiff(diff)
		}
		return nil
	})
}

// Unwatch detaches the bound negotiator, if any: its commits no longer
// reach this compiler.
func (c *Compiler) Unwatch() {
	c.mu.Lock()
	old := c.neg
	c.neg = nil
	c.mu.Unlock()
	if old != nil {
		old.OnCommit(nil)
	}
}

// compileDiff is Compile plus a diff against the previous result, under
// one lock so concurrent negotiation ticks serialize.
func (c *Compiler) compileDiff(pol *Policy) (*Diff, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.last
	res, err := c.recompile(pol)
	if err != nil {
		return nil, err
	}
	c.stats.Compiles++
	return diffResults(old, res), nil
}

func clonePlacement(p Placement) Placement {
	out := make(Placement, len(p))
	for fn, locs := range p {
		out[fn] = append([]string(nil), locs...)
	}
	return out
}
